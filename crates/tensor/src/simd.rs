//! Runtime-dispatched SIMD kernels for the wire-codec hot loops.
//!
//! Every kernel here has two implementations: an explicit `std::arch` AVX2
//! pipeline and a portable scalar reference. Dispatch is decided once per
//! process by [`active`]: the vector path runs only when the CPU reports
//! AVX2 (`is_x86_feature_detected!`) *and* `RNA_FORCE_SCALAR` is unset —
//! exporting `RNA_FORCE_SCALAR=1` pins the scalar reference, which CI uses
//! to keep the fallback covered. [`set_forced_scalar`] is the programmatic
//! override benches use to measure both paths in one process.
//!
//! The contract is **bit-identity**: for the same inputs (and the same
//! stochastic-rounding draw stream) the vector and scalar paths produce
//! byte-identical frames, so same-seed replays do not depend on the host
//! CPU. The paper's CUDA kernels become these runtime-detected host
//! kernels; the property tests in `tensor/tests/simd_codecs.rs` pin the
//! identity across lane-remainder lengths.
//!
//! Inputs are expected to be finite (gradients with NaN/∞ have already
//! diverged); the fp16 kernels are nevertheless total and bit-exact for
//! every input including NaN payloads.

// The one module allowed to use `unsafe`: `std::arch` intrinsics behind
// runtime feature detection, and byte-view casts over `f32` slices.
#![allow(unsafe_code)]

use crate::codec::{f16_bits_to_f32, f32_to_f16_bits, quantize_i8_sr};
use std::sync::atomic::{AtomicU8, Ordering};

/// Dispatch mode: 0 = undecided, 1 = auto (use SIMD when detected),
/// 2 = forced scalar.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Whether the scalar reference path is forced, by `RNA_FORCE_SCALAR` in
/// the environment (any value other than empty or `0`) or by
/// [`set_forced_scalar`]. Decided once and cached.
pub fn forced_scalar() -> bool {
    match MODE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let forced = std::env::var("RNA_FORCE_SCALAR")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            MODE.store(if forced { 2 } else { 1 }, Ordering::Relaxed);
            forced
        }
    }
}

/// Programmatically forces (or un-forces) the scalar path, overriding the
/// environment. Benches use this to time scalar vs SIMD in one process and
/// tests use it to pin bit-identity across both paths.
pub fn set_forced_scalar(on: bool) {
    MODE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Whether the AVX2 kernels are compiled in and the CPU supports them
/// (regardless of the force-scalar override).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the vector path will actually run: AVX2 detected and the scalar
/// override not engaged.
pub fn active() -> bool {
    avx2_available() && !forced_scalar()
}

/// Detected CPU features relevant to the codec kernels, for bench-report
/// headers (floors are only comparable across machines with the same
/// vector width).
pub fn detected_features() -> Vec<(&'static str, bool)> {
    #[cfg(target_arch = "x86_64")]
    {
        vec![
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("sse4.1", std::arch::is_x86_feature_detected!("sse4.1")),
        ]
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        vec![("avx2", false), ("sse4.1", false)]
    }
}

// ---------------------------------------------------------------------------
// fp16
// ---------------------------------------------------------------------------

/// Encodes `xs` as little-endian IEEE binary16 into `out`
/// (`out.len() == 2 * xs.len()`), round-to-nearest-even, bit-identical to
/// [`f32_to_f16_bits`] per element.
///
/// # Panics
///
/// Panics if `out.len() != 2 * xs.len()`.
pub fn fp16_encode(xs: &[f32], out: &mut [u8]) {
    assert_eq!(out.len(), xs.len() * 2, "fp16 output length mismatch");
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` verified AVX2 support at runtime.
        unsafe { avx2::fp16_encode(xs, out) };
        return;
    }
    fp16_encode_scalar(xs, out);
}

/// The portable reference for [`fp16_encode`].
pub fn fp16_encode_scalar(xs: &[f32], out: &mut [u8]) {
    for (o, &x) in out.chunks_exact_mut(2).zip(xs) {
        o.copy_from_slice(&f32_to_f16_bits(x).to_le_bytes());
    }
}

/// Decodes little-endian IEEE binary16 `bytes` (`bytes.len() == 2 *
/// out.len()`) into `out`, bit-identical to [`f16_bits_to_f32`] per
/// element.
///
/// # Panics
///
/// Panics if `bytes.len() != 2 * out.len()`.
pub fn fp16_decode(bytes: &[u8], out: &mut [f32]) {
    assert_eq!(bytes.len(), out.len() * 2, "fp16 payload length mismatch");
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` verified AVX2 support at runtime.
        unsafe { avx2::fp16_decode(bytes, out) };
        return;
    }
    fp16_decode_scalar(bytes, out);
}

/// The portable reference for [`fp16_decode`].
pub fn fp16_decode_scalar(bytes: &[u8], out: &mut [f32]) {
    for (o, b) in out.iter_mut().zip(bytes.chunks_exact(2)) {
        *o = f16_bits_to_f32(u16::from_le_bytes([b[0], b[1]]));
    }
}

// ---------------------------------------------------------------------------
// int8 stochastic rounding
// ---------------------------------------------------------------------------

/// Largest finite magnitude in `xs` (`0.0` for an empty slice), matching
/// the scalar fold `m.max(x.abs())` bit-for-bit on finite inputs.
pub fn abs_max(xs: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` verified AVX2 support at runtime.
        return unsafe { avx2::abs_max(xs) };
    }
    abs_max_scalar(xs)
}

/// The portable reference for [`abs_max`].
pub fn abs_max_scalar(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// Quantizes `xs` under `scale` with stochastic rounding into `out`
/// (`out.len() == xs.len()`, one `i8` stored as `u8` per element).
///
/// `draw` is consumed **exactly** as the scalar reference consumes it: one
/// uniform `u32` per element whose fractional part is strictly positive,
/// in element order — so the ChaCha codec stream advances identically on
/// both paths and same-seed replays stay bit-identical. The vector path
/// batches the surrounding arithmetic (divide, floor, compare, clamp)
/// eight lanes at a time and harvests the draws per block.
///
/// # Panics
///
/// Panics if `out.len() != xs.len()`.
pub fn int8_quantize(xs: &[f32], scale: f32, out: &mut [u8], draw: &mut impl FnMut() -> u32) {
    assert_eq!(out.len(), xs.len(), "int8 output length mismatch");
    if scale == 0.0 {
        out.fill(0);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` verified AVX2 support at runtime.
        unsafe { avx2::int8_quantize(xs, scale, out, draw) };
        return;
    }
    int8_quantize_scalar(xs, scale, out, draw);
}

/// The portable reference for [`int8_quantize`].
pub fn int8_quantize_scalar(
    xs: &[f32],
    scale: f32,
    out: &mut [u8],
    draw: &mut impl FnMut() -> u32,
) {
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = quantize_i8_sr(x, scale, draw) as u8;
    }
}

/// Dequantizes signed bytes back to `f32` (`out[i] = bytes[i] as i8 as f32
/// * scale`), bit-identical to the scalar loop.
///
/// # Panics
///
/// Panics if `bytes.len() != out.len()`.
pub fn int8_dequantize(bytes: &[u8], scale: f32, out: &mut [f32]) {
    assert_eq!(bytes.len(), out.len(), "int8 payload length mismatch");
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` verified AVX2 support at runtime.
        unsafe { avx2::int8_dequantize(bytes, scale, out) };
        return;
    }
    int8_dequantize_scalar(bytes, scale, out);
}

/// The portable reference for [`int8_dequantize`].
pub fn int8_dequantize_scalar(bytes: &[u8], scale: f32, out: &mut [f32]) {
    for (o, &b) in out.iter_mut().zip(bytes) {
        *o = f32::from(b as i8) * scale;
    }
}

// ---------------------------------------------------------------------------
// top-k threshold scan
// ---------------------------------------------------------------------------

/// Magnitude sort keys for a top-k scan: `x.to_bits() & 0x7FFF_FFFF`.
///
/// For sign-cleared floats the IEEE total order coincides with unsigned
/// integer order on the bit patterns (NaN payloads sort above infinity,
/// exactly like `f32::total_cmp` on magnitudes), so selection and scanning
/// run on plain `u32`s.
pub fn magnitude_keys(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits() & 0x7FFF_FFFF).collect()
}

/// Threshold scan for top-k selection: appends to `gt` every index whose
/// key is strictly above `t` and to `ties` the first (lowest-index)
/// `tie_cap` indices whose key equals `t`, both in ascending index order.
///
/// The vector path compares eight keys per step and falls into per-lane
/// classification only when a block contains a candidate — for small keep
/// fractions almost every block is skipped with one compare.
pub fn topk_scan(keys: &[u32], t: u32, tie_cap: usize, gt: &mut Vec<u32>, ties: &mut Vec<u32>) {
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` verified AVX2 support at runtime.
        unsafe { avx2::topk_scan(keys, t, tie_cap, gt, ties) };
        return;
    }
    topk_scan_scalar(keys, t, tie_cap, gt, ties);
}

/// The portable reference for [`topk_scan`].
pub fn topk_scan_scalar(
    keys: &[u32],
    t: u32,
    tie_cap: usize,
    gt: &mut Vec<u32>,
    ties: &mut Vec<u32>,
) {
    for (i, &k) in keys.iter().enumerate() {
        if k > t {
            gt.push(i as u32);
        } else if k == t && ties.len() < tie_cap {
            ties.push(i as u32);
        }
    }
}

// ---------------------------------------------------------------------------
// lossless byte views
// ---------------------------------------------------------------------------

/// Appends the little-endian byte image of `xs` to `out` — the lossless
/// wire payload — at memcpy speed on little-endian hosts.
pub fn f32s_to_le_bytes(xs: &[f32], out: &mut Vec<u8>) {
    #[cfg(target_endian = "little")]
    {
        out.extend_from_slice(raw::f32s_as_bytes(xs));
    }
    #[cfg(not(target_endian = "little"))]
    {
        out.reserve(xs.len() * 4);
        for &x in xs {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
}

/// Writes the little-endian byte image of `xs` into `out`
/// (`out.len() == 4 * xs.len()`), for chunk-parallel lossless encode.
///
/// # Panics
///
/// Panics if `out.len() != 4 * xs.len()`.
pub fn f32s_to_le_bytes_into(xs: &[f32], out: &mut [u8]) {
    assert_eq!(out.len(), xs.len() * 4, "lossless output length mismatch");
    #[cfg(target_endian = "little")]
    {
        out.copy_from_slice(raw::f32s_as_bytes(xs));
    }
    #[cfg(not(target_endian = "little"))]
    {
        for (o, &x) in out.chunks_exact_mut(4).zip(xs) {
            o.copy_from_slice(&x.to_le_bytes());
        }
    }
}

/// Reads little-endian `f32` bit patterns from `bytes`
/// (`bytes.len() == 4 * out.len()`) into `out` at memcpy speed.
///
/// # Panics
///
/// Panics if `bytes.len() != 4 * out.len()`.
pub fn le_bytes_to_f32s(bytes: &[u8], out: &mut [f32]) {
    assert_eq!(
        bytes.len(),
        out.len() * 4,
        "lossless payload length mismatch"
    );
    #[cfg(target_endian = "little")]
    {
        raw::bytes_into_f32s(bytes, out);
    }
    #[cfg(not(target_endian = "little"))]
    {
        for (o, b) in out.iter_mut().zip(bytes.chunks_exact(4)) {
            *o = f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        }
    }
}

/// Byte-view casts for the lossless payload path. `f32` has no invalid bit
/// patterns and no padding, so viewing a float slice as bytes (and copying
/// bytes over floats) is sound; endianness is handled by the callers.
#[cfg(target_endian = "little")]
mod raw {
    /// The raw little-endian byte image of a float slice.
    pub fn f32s_as_bytes(xs: &[f32]) -> &[u8] {
        // SAFETY: f32 and u8 have no padding or invalid representations;
        // the length covers exactly the same memory.
        unsafe { std::slice::from_raw_parts(xs.as_ptr().cast::<u8>(), xs.len() * 4) }
    }

    /// Copies a byte image over a float slice (lengths already checked).
    pub fn bytes_into_f32s(bytes: &[u8], out: &mut [f32]) {
        debug_assert_eq!(bytes.len(), out.len() * 4);
        // SAFETY: every 4-byte pattern is a valid f32; regions cannot
        // overlap (&mut out is exclusive).
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                out.as_mut_ptr().cast::<u8>(),
                bytes.len(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 kernels
// ---------------------------------------------------------------------------

/// Explicit AVX2 pipelines. Every function is `unsafe fn` gated on the
/// caller having verified `avx2` at runtime; all are bit-identical to the
/// scalar references above (pinned by the crate's property tests).
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// 8-lane fp16 encode: the scalar bit-twiddling of
    /// [`crate::codec::f32_to_f16_bits`] as a shift/blend pipeline.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn fp16_encode(xs: &[f32], out: &mut [u8]) {
        let n = xs.len();
        let mut i = 0;
        while i + 8 <= n {
            let bits = _mm256_castps_si256(_mm256_loadu_ps(xs.as_ptr().add(i)));
            let sign = _mm256_and_si256(_mm256_srli_epi32(bits, 16), _mm256_set1_epi32(0x8000));
            let abs = _mm256_and_si256(bits, _mm256_set1_epi32(0x7FFF_FFFF));
            let exp = _mm256_srli_epi32(abs, 23);
            let mant = _mm256_and_si256(abs, _mm256_set1_epi32(0x007F_FFFF));
            let half_exp = _mm256_sub_epi32(exp, _mm256_set1_epi32(112));

            // Normal path: drop 13 mantissa bits with RNE (carry may bump
            // the exponent, possibly into infinity — same as scalar).
            let kept_n = _mm256_srli_epi32(mant, 13);
            let rem_n = _mm256_and_si256(mant, _mm256_set1_epi32(0x1FFF));
            let h_n = _mm256_or_si256(_mm256_slli_epi32(half_exp, 10), kept_n);
            let rem_gt = _mm256_cmpgt_epi32(rem_n, _mm256_set1_epi32(0x1000));
            let rem_eq = _mm256_cmpeq_epi32(rem_n, _mm256_set1_epi32(0x1000));
            let odd_n = _mm256_cmpeq_epi32(
                _mm256_and_si256(h_n, _mm256_set1_epi32(1)),
                _mm256_set1_epi32(1),
            );
            let round_n = _mm256_or_si256(rem_gt, _mm256_and_si256(rem_eq, odd_n));
            // A compare mask is -1 per rounding lane; subtracting adds 1.
            let h_n = _mm256_sub_epi32(h_n, round_n);

            // Subnormal path: implicit leading 1, variable right shift
            // (14..=24), RNE on the shifted-out remainder.
            let m_s = _mm256_or_si256(mant, _mm256_set1_epi32(0x0080_0000));
            let shift = _mm256_sub_epi32(_mm256_set1_epi32(14), half_exp);
            let kept_s = _mm256_srlv_epi32(m_s, shift);
            let pow = _mm256_sllv_epi32(_mm256_set1_epi32(1), shift);
            let rem_s = _mm256_and_si256(m_s, _mm256_sub_epi32(pow, _mm256_set1_epi32(1)));
            let halfway = _mm256_srli_epi32(pow, 1);
            let srem_gt = _mm256_cmpgt_epi32(rem_s, halfway);
            let srem_eq = _mm256_cmpeq_epi32(rem_s, halfway);
            let odd_s = _mm256_cmpeq_epi32(
                _mm256_and_si256(kept_s, _mm256_set1_epi32(1)),
                _mm256_set1_epi32(1),
            );
            let round_s = _mm256_or_si256(srem_gt, _mm256_and_si256(srem_eq, odd_s));
            let h_s = _mm256_sub_epi32(kept_s, round_s);

            // Select: normal, then subnormal (half_exp <= 0), then flush to
            // zero (half_exp < -10), then overflow to infinity
            // (half_exp >= 0x1F), then NaN/∞ passthrough (which must win
            // over the overflow blend — their half_exp is also >= 0x1F).
            let is_sub = _mm256_cmpgt_epi32(_mm256_set1_epi32(1), half_exp);
            let mut h = _mm256_blendv_epi8(h_n, h_s, is_sub);
            let is_tiny = _mm256_cmpgt_epi32(_mm256_set1_epi32(-10), half_exp);
            h = _mm256_andnot_si256(is_tiny, h);
            let is_ovf = _mm256_cmpgt_epi32(half_exp, _mm256_set1_epi32(0x1E));
            h = _mm256_blendv_epi8(h, _mm256_set1_epi32(0x7C00), is_ovf);
            let is_naninf = _mm256_cmpgt_epi32(abs, _mm256_set1_epi32(0x7F7F_FFFF));
            let is_nan = _mm256_cmpgt_epi32(abs, _mm256_set1_epi32(0x7F80_0000));
            let naninf_h =
                _mm256_blendv_epi8(_mm256_set1_epi32(0x7C00), _mm256_set1_epi32(0x7E00), is_nan);
            h = _mm256_blendv_epi8(h, naninf_h, is_naninf);
            h = _mm256_or_si256(h, sign);

            // Pack 8 dwords (each <= 0xFFFF) to 8 words, fixing the 128-bit
            // lane interleave of packus.
            let packed = _mm256_packus_epi32(h, h);
            let ordered = _mm256_permute4x64_epi64(packed, 0b11_01_10_00);
            let low = _mm256_castsi256_si128(ordered);
            _mm_storeu_si128(out.as_mut_ptr().add(2 * i).cast::<__m128i>(), low);
            i += 8;
        }
        super::fp16_encode_scalar(&xs[i..], &mut out[2 * i..]);
    }

    /// 8-lane fp16 decode. Subnormal halves decode as `mantissa × 2⁻²⁴`
    /// (exact in f32, identical to the scalar renormalization loop).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn fp16_decode(bytes: &[u8], out: &mut [f32]) {
        let n = out.len();
        let mut i = 0;
        while i + 8 <= n {
            let h16 = _mm_loadu_si128(bytes.as_ptr().add(2 * i).cast::<__m128i>());
            let h = _mm256_cvtepu16_epi32(h16);
            let sign = _mm256_slli_epi32(_mm256_and_si256(h, _mm256_set1_epi32(0x8000)), 16);
            let e = _mm256_and_si256(_mm256_srli_epi32(h, 10), _mm256_set1_epi32(0x1F));
            let m = _mm256_and_si256(h, _mm256_set1_epi32(0x03FF));
            let m13 = _mm256_slli_epi32(m, 13);
            let norm = _mm256_or_si256(
                _mm256_slli_epi32(_mm256_add_epi32(e, _mm256_set1_epi32(112)), 23),
                m13,
            );
            let inf_nan = _mm256_or_si256(_mm256_set1_epi32(0x7F80_0000), m13);
            // Subnormal: m × 2⁻²⁴, both steps exact.
            let fsub = _mm256_mul_ps(
                _mm256_cvtepi32_ps(m),
                _mm256_set1_ps(f32::from_bits(0x3380_0000)),
            );
            let sub_bits = _mm256_castps_si256(fsub);
            let is_e0 = _mm256_cmpeq_epi32(e, _mm256_setzero_si256());
            let is_e31 = _mm256_cmpeq_epi32(e, _mm256_set1_epi32(0x1F));
            let mut bits = _mm256_blendv_epi8(norm, sub_bits, is_e0);
            bits = _mm256_blendv_epi8(bits, inf_nan, is_e31);
            bits = _mm256_or_si256(bits, sign);
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_castsi256_ps(bits));
            i += 8;
        }
        super::fp16_decode_scalar(&bytes[2 * i..], &mut out[i..]);
    }

    /// Vector absolute maximum (finite inputs).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn abs_max(xs: &[f32]) -> f32 {
        let n = xs.len();
        let mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFF_FFFF));
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            let x = _mm256_loadu_ps(xs.as_ptr().add(i));
            acc = _mm256_max_ps(acc, _mm256_and_ps(x, mask));
            i += 8;
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut m = lanes.iter().fold(0.0f32, |m, &v| m.max(v));
        for &x in &xs[i..] {
            m = m.max(x.abs());
        }
        m
    }

    /// 8-lane stochastic-rounding quantizer. The divide/floor/compare/clamp
    /// arithmetic is vectorized; draws are harvested per block for exactly
    /// the lanes whose fractional part is positive, in lane order, so the
    /// draw stream matches the scalar reference element for element.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn int8_quantize(
        xs: &[f32],
        scale: f32,
        out: &mut [u8],
        draw: &mut impl FnMut() -> u32,
    ) {
        let n = xs.len();
        let vscale = _mm256_set1_ps(scale);
        // 2⁻²⁴ as a multiply: exact for 24-bit draws, same result as the
        // scalar division by 2²⁴.
        let inv24 = _mm256_set1_ps(f32::from_bits(0x3380_0000));
        let mut us = [0.0f32; 8];
        let mut lanes = [0i32; 8];
        let mut i = 0;
        while i + 8 <= n {
            let x = _mm256_loadu_ps(xs.as_ptr().add(i));
            let v = _mm256_div_ps(x, vscale);
            let lo = _mm256_floor_ps(v);
            let frac = _mm256_sub_ps(v, lo);
            let mut q = _mm256_cvttps_epi32(lo);
            let need = _mm256_cmp_ps::<_CMP_GT_OQ>(frac, _mm256_setzero_ps());
            let mask = _mm256_movemask_ps(need) as u32 & 0xFF;
            if mask != 0 {
                if mask == 0xFF {
                    for u in &mut us {
                        *u = (draw() >> 8) as f32;
                    }
                } else {
                    for (lane, u) in us.iter_mut().enumerate() {
                        *u = if mask & (1 << lane) != 0 {
                            (draw() >> 8) as f32
                        } else {
                            f32::INFINITY
                        };
                    }
                }
                let uv = _mm256_mul_ps(_mm256_loadu_ps(us.as_ptr()), inv24);
                let up = _mm256_cmp_ps::<_CMP_LT_OQ>(uv, frac);
                q = _mm256_sub_epi32(q, _mm256_castps_si256(up));
            }
            q = _mm256_min_epi32(q, _mm256_set1_epi32(127));
            q = _mm256_max_epi32(q, _mm256_set1_epi32(-127));
            _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), q);
            for (lane, &v) in lanes.iter().enumerate() {
                *out.get_unchecked_mut(i + lane) = v as u8;
            }
            i += 8;
        }
        super::int8_quantize_scalar(&xs[i..], scale, &mut out[i..], draw);
    }

    /// 8-lane dequantizer: `out[i] = bytes[i] as i8 as f32 * scale`.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn int8_dequantize(bytes: &[u8], scale: f32, out: &mut [f32]) {
        let n = out.len();
        let vscale = _mm256_set1_ps(scale);
        let mut i = 0;
        while i + 8 <= n {
            let b = _mm_loadl_epi64(bytes.as_ptr().add(i).cast::<__m128i>());
            let q = _mm256_cvtepi8_epi32(b);
            let f = _mm256_mul_ps(_mm256_cvtepi32_ps(q), vscale);
            _mm256_storeu_ps(out.as_mut_ptr().add(i), f);
            i += 8;
        }
        super::int8_dequantize_scalar(&bytes[i..], scale, &mut out[i..]);
    }

    /// Vectorized threshold scan: one compare rejects eight keys at a time;
    /// only blocks containing a candidate fall into per-lane classification.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn topk_scan(
        keys: &[u32],
        t: u32,
        tie_cap: usize,
        gt: &mut Vec<u32>,
        ties: &mut Vec<u32>,
    ) {
        let n = keys.len();
        // Keys are sign-cleared (≤ 0x7FFF_FFFF), so signed compares agree
        // with unsigned order; `t - 1` makes `> t-1` mean `>= t`, and for
        // t = 0 the wrap to -1 correctly flags every lane.
        let ge_bound = _mm256_set1_epi32((t as i32).wrapping_sub(1));
        let mut i = 0;
        while i + 8 <= n {
            let k = _mm256_loadu_si256(keys.as_ptr().add(i).cast::<__m256i>());
            let ge = _mm256_cmpgt_epi32(k, ge_bound);
            let mask = _mm256_movemask_ps(_mm256_castsi256_ps(ge)) as u32 & 0xFF;
            if mask != 0 {
                for lane in 0..8 {
                    if mask & (1 << lane) == 0 {
                        continue;
                    }
                    let key = *keys.get_unchecked(i + lane);
                    if key > t {
                        gt.push((i + lane) as u32);
                    } else if ties.len() < tie_cap {
                        ties.push((i + lane) as u32);
                    }
                }
            }
            i += 8;
        }
        for (off, &key) in keys[i..].iter().enumerate() {
            if key > t {
                gt.push((i + off) as u32);
            } else if key == t && ties.len() < tie_cap {
                ties.push((i + off) as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> u32 {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 32) as u32
        }
    }

    fn pseudo(len: usize, seed: u64) -> Vec<f32> {
        let mut d = lcg(seed);
        (0..len)
            .map(|_| (d() as f32 / (1u32 << 24) as f32) - 128.0)
            .collect()
    }

    #[test]
    fn force_scalar_override_roundtrips() {
        let was = forced_scalar();
        set_forced_scalar(true);
        assert!(forced_scalar());
        assert!(!active());
        set_forced_scalar(false);
        assert!(!forced_scalar());
        set_forced_scalar(was);
    }

    #[test]
    fn detected_features_names_are_stable() {
        let names: Vec<&str> = detected_features().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["avx2", "sse4.1"]);
    }

    #[test]
    fn lossless_byte_views_roundtrip() {
        let xs = pseudo(37, 5);
        let mut buf = Vec::new();
        f32s_to_le_bytes(&xs, &mut buf);
        assert_eq!(buf.len(), xs.len() * 4);
        let mut sliced = vec![0u8; xs.len() * 4];
        f32s_to_le_bytes_into(&xs, &mut sliced);
        assert_eq!(buf, sliced);
        let mut back = vec![0.0f32; xs.len()];
        le_bytes_to_f32s(&buf, &mut back);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&xs), bits(&back));
    }

    #[test]
    fn magnitude_keys_order_matches_total_cmp() {
        let xs = [0.0f32, -0.0, 1.5, -1.5, f32::INFINITY, f32::NAN, 1e-40];
        let keys = magnitude_keys(&xs);
        for (i, a) in xs.iter().enumerate() {
            for (j, b) in xs.iter().enumerate() {
                assert_eq!(
                    a.abs().total_cmp(&b.abs()),
                    keys[i].cmp(&keys[j]),
                    "key order must mirror magnitude total order ({a} vs {b})"
                );
            }
        }
    }
}
