//! Property tests pinning every fused kernel to a scalar reference
//! implementation.
//!
//! The scalar references below are deliberately naive, un-unrolled loops —
//! the exact code the optimized kernels replaced. Sum-style accumulations
//! must match **bit-exactly** (the fused kernels perform the same
//! per-element operations in the same order); everything else must agree
//! within 1e-6.

use proptest::prelude::*;
use rna_tensor::reduce::{
    staleness_weighted_average, staleness_weighted_average_into, weighted_average,
    weighted_average_into,
};
use rna_tensor::{ReduceOp, Tensor, TensorPool};

fn scalar_axpy(x: &mut [f32], alpha: f32, y: &[f32]) {
    for (a, b) in x.iter_mut().zip(y) {
        *a += alpha * b;
    }
}

fn scalar_scale(x: &mut [f32], s: f32) {
    for a in x.iter_mut() {
        *a *= s;
    }
}

proptest! {
    #[test]
    fn add_assign_is_bit_exact(
        len in 0usize..40,
        seed in 0u64..1000,
    ) {
        let (x, y) = two_tensors(len, seed);
        let mut fused = Tensor::from_vec(x.clone());
        fused.add_assign(&Tensor::from_vec(y.clone()));
        let mut reference = x;
        for (a, b) in reference.iter_mut().zip(&y) { *a += b; }
        prop_assert_eq!(fused.as_slice(), reference.as_slice());
    }

    #[test]
    fn axpy_is_bit_exact(
        len in 0usize..40,
        alpha in -4.0f32..4.0,
        seed in 0u64..1000,
    ) {
        let (x, y) = two_tensors(len, seed);
        let mut fused = Tensor::from_vec(x.clone());
        fused.axpy(alpha, &Tensor::from_vec(y.clone()));
        let mut reference = x;
        scalar_axpy(&mut reference, alpha, &y);
        prop_assert_eq!(fused.as_slice(), reference.as_slice());
    }

    #[test]
    fn scale_is_bit_exact(
        len in 0usize..40,
        s in -4.0f32..4.0,
        seed in 0u64..1000,
    ) {
        let (x, _) = two_tensors(len, seed);
        let mut fused = Tensor::from_vec(x.clone());
        fused.scale(s);
        let mut reference = x;
        scalar_scale(&mut reference, s);
        prop_assert_eq!(fused.as_slice(), reference.as_slice());
    }

    #[test]
    fn axpy_scale_matches_two_pass_bit_exactly(
        len in 0usize..40,
        alpha in -4.0f32..4.0,
        s in -4.0f32..4.0,
        seed in 0u64..1000,
    ) {
        let (x, y) = two_tensors(len, seed);
        let mut fused = Tensor::from_vec(x.clone());
        fused.axpy_scale(alpha, &Tensor::from_vec(y.clone()), s);
        let mut reference = x;
        scalar_axpy(&mut reference, alpha, &y);
        scalar_scale(&mut reference, s);
        prop_assert_eq!(fused.as_slice(), reference.as_slice());
    }

    #[test]
    fn reduce_ops_match_scalar_reference(
        len in 0usize..40,
        n in 1usize..6,
        seed in 0u64..1000,
    ) {
        let inputs: Vec<Tensor> = (0..n)
            .map(|i| Tensor::from_vec(pseudo(len, seed.wrapping_add(i as u64))))
            .collect();
        let refs: Vec<&Tensor> = inputs.iter().collect();
        for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min] {
            let fused = op.reduce(&refs).unwrap();
            let mut reference = inputs[0].as_slice().to_vec();
            for t in &inputs[1..] {
                for (a, &b) in reference.iter_mut().zip(t.as_slice()) {
                    *a = match op {
                        ReduceOp::Sum => *a + b,
                        ReduceOp::Max => a.max(b),
                        ReduceOp::Min => a.min(b),
                        ReduceOp::Mean => unreachable!(),
                    };
                }
            }
            // Sum (and the order-insensitive max/min) are bit-exact.
            prop_assert_eq!(fused.as_slice(), reference.as_slice());
        }
        // Mean: same sum then one multiply by 1/n — also bit-exact.
        let fused = ReduceOp::Mean.reduce(&refs).unwrap();
        let mut reference = inputs[0].as_slice().to_vec();
        for t in &inputs[1..] {
            for (a, b) in reference.iter_mut().zip(t.as_slice()) { *a += b; }
        }
        scalar_scale(&mut reference, 1.0 / n as f32);
        prop_assert_eq!(fused.as_slice(), reference.as_slice());
    }

    #[test]
    fn weighted_average_into_matches_naive_bit_exactly(
        len in 0usize..40,
        n in 1usize..6,
        seed in 0u64..1000,
        weights in proptest::collection::vec(0.0f32..5.0, 1..6),
    ) {
        let n = n.min(weights.len());
        let weights = &weights[..n];
        let inputs: Vec<Tensor> = (0..n)
            .map(|i| Tensor::from_vec(pseudo(len, seed.wrapping_add(100 + i as u64))))
            .collect();
        let refs: Vec<&Tensor> = inputs.iter().collect();

        // The naive seed implementation: zeros → axpy per input → scale.
        let total: f32 = weights.iter().sum();
        let naive = if total == 0.0 {
            None
        } else {
            let mut acc = vec![0.0f32; len];
            for (t, &w) in refs.iter().zip(weights) {
                if w > 0.0 {
                    scalar_axpy(&mut acc, w, t.as_slice());
                }
            }
            scalar_scale(&mut acc, 1.0 / total);
            Some(acc)
        };

        let alloc = weighted_average(&refs, weights);
        let mut pooled_out = TensorPool::new().acquire(len);
        let pooled_ok = weighted_average_into(&mut pooled_out, &refs, weights);

        match naive {
            Some(reference) => {
                prop_assert_eq!(alloc.unwrap().as_slice(), reference.as_slice());
                prop_assert!(pooled_ok);
                prop_assert_eq!(pooled_out.as_slice(), reference.as_slice());
            }
            None => {
                prop_assert!(alloc.is_none());
                prop_assert!(!pooled_ok);
            }
        }
    }

    #[test]
    fn staleness_average_into_matches_naive_bit_exactly(
        len in 0usize..40,
        n in 1usize..6,
        k in 10u64..30,
        seed in 0u64..1000,
    ) {
        let tensors: Vec<Tensor> = (0..n)
            .map(|i| Tensor::from_vec(pseudo(len, seed.wrapping_add(200 + i as u64))))
            .collect();
        let grads: Vec<(u64, &Tensor)> = tensors
            .iter()
            .enumerate()
            .map(|(i, t)| (k - (i as u64 % 7), t))
            .collect();

        // Naive seed implementation.
        let tau = grads.iter().map(|&(t, _)| k.saturating_sub(t)).max().unwrap();
        let base = k - tau;
        let mut acc = vec![0.0f32; len];
        let mut total = 0.0f32;
        for &(t, g) in &grads {
            let w = (t - base + 1) as f32;
            scalar_axpy(&mut acc, w, g.as_slice());
            total += w;
        }
        scalar_scale(&mut acc, 1.0 / total);

        let fused = staleness_weighted_average(&grads, k).unwrap();
        prop_assert_eq!(fused.as_slice(), acc.as_slice());

        let mut out = Tensor::zeros(len);
        prop_assert!(staleness_weighted_average_into(&mut out, &grads, k));
        prop_assert_eq!(out.as_slice(), acc.as_slice());
    }

    #[test]
    fn lerp_stays_within_tolerance_of_reference(
        len in 0usize..40,
        t in 0.0f32..1.0,
        seed in 0u64..1000,
    ) {
        let (x, y) = two_tensors(len, seed);
        let mut fused = Tensor::from_vec(x.clone());
        fused.lerp(&Tensor::from_vec(y.clone()), t);
        for i in 0..len {
            let expect = (1.0 - t) * x[i] + t * y[i];
            prop_assert!((fused.as_slice()[i] - expect).abs() <= 1e-6 * expect.abs().max(1.0));
        }
    }
}

/// Deterministic pseudo-random buffer so every proptest case is cheap to
/// derive and reproducible without extra strategy plumbing.
fn pseudo(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 200.0 - 100.0
        })
        .collect()
}

fn two_tensors(len: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    (pseudo(len, seed), pseudo(len, seed.wrapping_add(1)))
}
