//! Pins the SIMD data path to the scalar reference, bit for bit.
//!
//! Every assertion here compares *frames* (and decoded bit patterns, and
//! stochastic-rounding draw counts) across the three executions of the same
//! codec: the portable scalar reference, the runtime-dispatched SIMD path,
//! and the chunk-parallel path. Same-seed replays must not depend on the
//! host CPU or the thread count, so all three must agree exactly — on every
//! codec, every lane-remainder length, and the error-feedback recurrence.
//!
//! The forced-scalar override is process-global, so tests that toggle it
//! serialize on a mutex.

use rna_tensor::codec::{self, Compression};
use rna_tensor::{simd, Tensor};
use std::sync::Mutex;

static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the dispatch mode pinned, restoring auto dispatch after.
fn with_forced_scalar<T>(forced: bool, f: impl FnOnce() -> T) -> T {
    let _guard = MODE_LOCK.lock().unwrap();
    simd::set_forced_scalar(forced);
    let out = f();
    simd::set_forced_scalar(false);
    out
}

/// Deterministic draw stream (SplitMix-ish LCG) that counts consumption.
fn counted_lcg(seed: u64) -> (impl FnMut() -> u32, std::rc::Rc<std::cell::Cell<u64>>) {
    let count = std::rc::Rc::new(std::cell::Cell::new(0u64));
    let c = count.clone();
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (
        move || {
            c.set(c.get() + 1);
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 32) as u32
        },
        count,
    )
}

/// Pseudo-random finite data with magnitude structure (mix of tiny, normal,
/// and large values, plus exact ties for the top-k selection path).
fn pseudo(len: usize, seed: u64) -> Vec<f32> {
    let (mut d, _) = counted_lcg(seed);
    (0..len)
        .map(|i| {
            let base = (d() as f32 / (1u32 << 24) as f32) - 128.0;
            match i % 7 {
                0 => 0.0,
                1 => base * 1e-6,
                2 => -base,
                3 => 42.5, // repeated exact value → magnitude ties
                _ => base,
            }
        })
        .collect()
}

/// Values that walk every branch of the fp16 encode pipeline: normals,
/// subnormals, flush-to-zero magnitudes, overflow, infinities, NaNs, and
/// signed zeros — repeated past one vector width.
fn fp16_specials() -> Vec<f32> {
    let core = [
        0.0f32,
        -0.0,
        1.0,
        -1.5,
        65504.0,  // largest finite half
        65520.0,  // rounds to half infinity
        131000.0, // overflow
        -70000.0, // negative overflow
        6.104e-5, // smallest normal half neighborhood
        6.0e-8,   // half subnormal
        5.9e-8,   // smallest half subnormal neighborhood
        2.9e-8,   // below half subnormal: flush to zero
        -2.0e-8,  // negative flush
        1e-40,    // f32 subnormal input
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        -f32::NAN,
        f32::from_bits(0x7F80_0001), // signaling-ish NaN payload
        0.333_333_34,
        -0.000_122_070_31, // exactly representable small half
        1234.567,
    ];
    core.iter().copied().cycle().take(3 * core.len()).collect()
}

fn all_codecs() -> Vec<Compression> {
    vec![
        Compression::Lossless,
        Compression::Fp16,
        Compression::Int8,
        Compression::TopK { permille: 200 },
    ]
}

/// Encodes then decodes under the given dispatch mode, returning the frame,
/// the decoded bit patterns, and how many draws were consumed.
fn run_roundtrip(
    codec: Compression,
    xs: &[f32],
    forced: bool,
    seed: u64,
) -> (Vec<u8>, Vec<u32>, u64) {
    with_forced_scalar(forced, || {
        let (mut draw, count) = counted_lcg(seed);
        let mut frame = Vec::new();
        codec.encode_slice(xs, &mut frame, &mut draw);
        let mut out = vec![f32::NAN; xs.len()];
        codec.decode_slice(&frame, &mut out).expect("decode");
        let bits = out.iter().map(|x| x.to_bits()).collect();
        (frame, bits, count.get())
    })
}

#[test]
fn simd_matches_scalar_for_all_codecs_and_lane_remainders() {
    if !simd::avx2_available() {
        // Dispatch degenerates to the scalar path; nothing to compare.
        return;
    }
    for codec in all_codecs() {
        for len in 0..=33 {
            for seed in [1u64, 7, 1234] {
                let xs = pseudo(len, seed ^ (len as u64) << 8);
                let (f_scalar, d_scalar, n_scalar) = run_roundtrip(codec, &xs, true, seed);
                let (f_simd, d_simd, n_simd) = run_roundtrip(codec, &xs, false, seed);
                assert_eq!(
                    f_scalar,
                    f_simd,
                    "{} len={len} seed={seed}: frame bytes diverged",
                    codec.name()
                );
                assert_eq!(
                    d_scalar,
                    d_simd,
                    "{} len={len} seed={seed}: decoded bits diverged",
                    codec.name()
                );
                assert_eq!(
                    n_scalar,
                    n_simd,
                    "{} len={len} seed={seed}: draw streams advanced differently",
                    codec.name()
                );
            }
        }
    }
}

#[test]
fn fp16_simd_matches_scalar_on_special_values() {
    if !simd::avx2_available() {
        return;
    }
    let xs = fp16_specials();
    let (f_scalar, d_scalar, _) = run_roundtrip(Compression::Fp16, &xs, true, 0);
    let (f_simd, d_simd, _) = run_roundtrip(Compression::Fp16, &xs, false, 0);
    assert_eq!(f_scalar, f_simd, "fp16 specials: frames diverged");
    assert_eq!(d_scalar, d_simd, "fp16 specials: decoded bits diverged");
}

#[test]
fn chunk_parallel_matches_serial_for_every_thread_count() {
    for codec in all_codecs() {
        for len in [0usize, 1, 7, 31, 33, 1000] {
            let xs = pseudo(len, 99);
            let (mut draw_s, count_s) = counted_lcg(5);
            let mut serial = Vec::new();
            codec.encode_slice(&xs, &mut serial, &mut draw_s);
            let mut serial_out = vec![f32::NAN; len];
            codec
                .decode_slice(&serial, &mut serial_out)
                .expect("decode");
            for threads in [2usize, 3, 5] {
                let (mut draw_p, count_p) = counted_lcg(5);
                let mut parallel = Vec::new();
                codec.encode_slice_mt(&xs, &mut parallel, &mut draw_p, threads);
                assert_eq!(
                    serial,
                    parallel,
                    "{} len={len} threads={threads}: frame bytes diverged",
                    codec.name()
                );
                assert_eq!(
                    count_s.get(),
                    count_p.get(),
                    "{} len={len} threads={threads}: draw streams diverged",
                    codec.name()
                );
                let mut parallel_out = vec![f32::NAN; len];
                codec
                    .decode_slice_mt(&parallel, &mut parallel_out, threads)
                    .expect("decode_mt");
                let a: Vec<u32> = serial_out.iter().map(|x| x.to_bits()).collect();
                let b: Vec<u32> = parallel_out.iter().map(|x| x.to_bits()).collect();
                assert_eq!(
                    a,
                    b,
                    "{} len={len} threads={threads}: decoded bits diverged",
                    codec.name()
                );
            }
        }
    }
}

#[test]
fn error_feedback_is_identical_across_scalar_simd_and_parallel() {
    for codec in [
        Compression::Fp16,
        Compression::Int8,
        Compression::TopK { permille: 100 },
    ] {
        let len = 133; // odd length: exercises lane remainders through two rounds
        let grad0 = pseudo(len, 3);
        let grad1 = pseudo(len, 4);

        // One run = two feedback rounds sharing a residual, like a protocol
        // round sequence. Returns (frames, grad bits, residual bits, draws).
        let run = |mode: &str| {
            let exec = |forced: bool, threads: usize| {
                with_forced_scalar(forced, || {
                    let (mut draw, count) = counted_lcg(11);
                    let mut residual = Tensor::zeros(len);
                    let mut scratch = Vec::new();
                    let mut frames = Vec::new();
                    let mut grads = Vec::new();
                    for g0 in [&grad0, &grad1] {
                        let mut g = Tensor::from_vec(g0.clone());
                        if threads <= 1 {
                            codec::encode_with_feedback(
                                codec,
                                &mut g,
                                &mut residual,
                                &mut scratch,
                                &mut draw,
                            );
                        } else {
                            codec::encode_with_feedback_mt(
                                codec,
                                &mut g,
                                &mut residual,
                                &mut scratch,
                                &mut draw,
                                threads,
                            );
                        }
                        frames.push(scratch.clone());
                        grads.push(g.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>());
                    }
                    let res: Vec<u32> = residual.as_slice().iter().map(|x| x.to_bits()).collect();
                    (frames, grads, res, count.get())
                })
            };
            match mode {
                "scalar" => exec(true, 1),
                "simd" => exec(false, 1),
                "parallel" => exec(false, 3),
                _ => unreachable!(),
            }
        };

        let scalar = run("scalar");
        let simd_run = run("simd");
        let parallel = run("parallel");
        assert_eq!(
            scalar,
            simd_run,
            "{}: scalar vs simd feedback diverged",
            codec.name()
        );
        assert_eq!(
            scalar,
            parallel,
            "{}: scalar vs parallel feedback diverged",
            codec.name()
        );
    }
}

#[test]
fn wire_tensor_bulk_roundtrip_is_bit_exact() {
    use rna_tensor::wire::{put_tensor, Reader};
    let t = Tensor::from_vec(fp16_specials());
    let mut buf = Vec::new();
    put_tensor(&mut buf, &t);
    let mut r = Reader::new(&buf);
    let back = r.tensor().expect("tensor roundtrip");
    let a: Vec<u32> = t.as_slice().iter().map(|x| x.to_bits()).collect();
    let b: Vec<u32> = back.as_slice().iter().map(|x| x.to_bits()).collect();
    assert_eq!(a, b);
    assert_eq!(r.remaining(), 0);
}
