//! Elastic membership: deterministic churn plans and online regrouping.
//!
//! The paper fixes the worker set at launch; real heterogeneous fleets
//! churn — spot instances vanish, new nodes arrive, and a fast worker can
//! degrade into a persistent straggler until the launch-time ζ-split
//! grouping (§4, [`crate::grouping`]) is wrong. This module supplies the
//! three pieces all execution worlds share:
//!
//! * [`ChurnPlan`] — a seedable-free, deterministic membership script
//!   (join / retire / evict at global rounds) mirroring
//!   [`crate::fault::FaultPlan`]'s compile-and-replay design, so the same
//!   plan fed to the simulator, the threaded runtime, and the process
//!   runtime admits and removes the same identities at the same rounds,
//!   and same-seed DES replays stay bit-identical.
//! * [`SpeedEstimator`] — per-worker EWMA of observed per-iteration times,
//!   fed from virtual-time deltas in the DES and heartbeat/iteration
//!   timings in the real runtimes.
//! * [`RegroupPolicy`] / [`regroup_decision`] — when measured
//!   heterogeneity drifts, re-run the paper's ζ-split on the *live*
//!   estimates and propose a new grouping; the hierarchical protocol
//!   swaps topologies atomically at a quiesce point.
//!
//! ## Membership semantics (identical in every world)
//!
//! All plans are expressed against a fixed *capacity* `n`: the maximum
//! number of worker identities the run will ever hold. Joiners exist from
//! construction but are **dormant** — they compute nothing, join no
//! election, and count in no majority — until their join round. Vectors
//! never shrink; retirement and eviction deactivate an identity in place.
//! This is what makes bit-identical replay trivial and keeps churn-free
//! runs byte-identical to their pre-elastic behaviour.
//!
//! * **Join at round `r`** — the worker is dormant for rounds `< r` and
//!   active from round `r` on. Admission streams it the current model
//!   snapshot (counted in `snapshot_bytes_streamed`) and grants it RNG
//!   streams from a disjoint namespace, so the data streams of incumbent
//!   workers are untouched.
//! * **Retire at round `r`** — graceful: the worker is active *through*
//!   round `r`, its final contribution is drained and reduced, and it is
//!   removed when round `r` completes. Zero contributed rounds are lost.
//! * **Evict at round `r`** — immediate: the worker is active only for
//!   rounds `< r`; whatever it computed toward round `r` is dropped, the
//!   same way a crash drops a cached gradient.

use rna_simnet::SimDuration;

use crate::fault::{ConfigError, ToleranceConfig};
use crate::grouping::partition_groups;

/// One membership event against one worker identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// The worker becomes active at global round `at_round` (dormant
    /// before). `admission_deadline_us` bounds how long admission — the
    /// snapshot stream plus handshake — may take before the controller
    /// gives up on the joiner for this round and treats it as not yet
    /// arrived; it must be at least the liveness lease, or the joiner
    /// would be declared dead mid-admission.
    Join {
        /// First global round the worker participates in.
        at_round: u64,
        /// Admission budget in microseconds (real time in the runtimes,
        /// virtual time in the DES).
        admission_deadline_us: u64,
    },
    /// Graceful leave: the worker contributes through round `at_round`
    /// (its in-flight gradient is drained, not dropped) and is removed
    /// when that round completes.
    Retire {
        /// Last global round the worker contributes to.
        at_round: u64,
    },
    /// Forced leave: the worker is removed as round `at_round` begins;
    /// anything it computed toward that round is discarded.
    Evict {
        /// First global round the worker is excluded from.
        at_round: u64,
    },
}

impl ChurnEvent {
    /// The global round at which this event fires.
    pub fn at_round(&self) -> u64 {
        match *self {
            ChurnEvent::Join { at_round, .. } => at_round,
            ChurnEvent::Retire { at_round } => at_round,
            ChurnEvent::Evict { at_round } => at_round,
        }
    }
}

/// A deterministic membership script: which identity joins or leaves at
/// which global round.
///
/// Plans are plain data — no randomness — so the same plan fed to all
/// three execution worlds produces the same admissions and removals at
/// the same rounds, which is what the cross-world churn tests pin.
///
/// # Examples
///
/// ```
/// use rna_core::membership::ChurnPlan;
/// use rna_core::fault::ToleranceConfig;
///
/// // Capacity 8: workers 0..6 start active, 6 and 7 join mid-run,
/// // worker 1 retires gracefully after round 20.
/// let plan = ChurnPlan::none()
///     .join(6, 10, 500_000)
///     .join(7, 14, 500_000)
///     .retire(1, 20);
/// plan.validate(8, &ToleranceConfig::default()).unwrap();
/// assert!(!plan.active_at(6, 9));
/// assert!(plan.active_at(6, 10));
/// assert!(plan.active_at(1, 20)); // retiree drains through its round
/// assert!(!plan.active_at(1, 21));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnPlan {
    events: Vec<(usize, ChurnEvent)>,
}

impl ChurnPlan {
    /// The empty plan: the launch membership runs unchanged.
    pub fn none() -> Self {
        ChurnPlan::default()
    }

    /// Adds a join: `worker` is dormant until global round `at_round`,
    /// then admitted with an `admission_deadline_us` budget.
    pub fn join(mut self, worker: usize, at_round: u64, admission_deadline_us: u64) -> Self {
        self.events.push((
            worker,
            ChurnEvent::Join {
                at_round,
                admission_deadline_us,
            },
        ));
        self
    }

    /// Adds a graceful retirement: `worker` contributes through round
    /// `at_round`, then leaves with its final contribution drained.
    pub fn retire(mut self, worker: usize, at_round: u64) -> Self {
        self.events.push((worker, ChurnEvent::Retire { at_round }));
        self
    }

    /// Adds an eviction: `worker` is removed as round `at_round` begins.
    pub fn evict(mut self, worker: usize, at_round: u64) -> Self {
        self.events.push((worker, ChurnEvent::Evict { at_round }));
        self
    }

    /// Whether the plan changes nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All `(worker, event)` entries in insertion order.
    pub fn events(&self) -> &[(usize, ChurnEvent)] {
        &self.events
    }

    /// The events aimed at one worker.
    pub fn for_worker(&self, worker: usize) -> impl Iterator<Item = ChurnEvent> + '_ {
        self.events
            .iter()
            .filter(move |(w, _)| *w == worker)
            .map(|(_, e)| *e)
    }

    /// The `(at_round, admission_deadline_us)` of `worker`'s join, if the
    /// plan schedules one.
    pub fn join_of(&self, worker: usize) -> Option<(u64, u64)> {
        self.for_worker(worker).find_map(|e| match e {
            ChurnEvent::Join {
                at_round,
                admission_deadline_us,
            } => Some((at_round, admission_deadline_us)),
            _ => None,
        })
    }

    /// The round through which `worker` contributes before retiring, if
    /// the plan schedules a graceful retirement.
    pub fn retire_of(&self, worker: usize) -> Option<u64> {
        self.for_worker(worker).find_map(|e| match e {
            ChurnEvent::Retire { at_round } => Some(at_round),
            _ => None,
        })
    }

    /// The round at which `worker` is evicted, if the plan schedules one.
    pub fn evict_of(&self, worker: usize) -> Option<u64> {
        self.for_worker(worker).find_map(|e| match e {
            ChurnEvent::Evict { at_round } => Some(at_round),
            _ => None,
        })
    }

    /// Sorted worker ids with a scheduled join (the identities that start
    /// dormant). The runtimes use this to replay RNG fork order: joiners
    /// draw their streams from a disjoint namespace.
    pub fn joiners(&self) -> Vec<usize> {
        let mut js: Vec<usize> = self
            .events
            .iter()
            .filter(|(_, e)| matches!(e, ChurnEvent::Join { .. }))
            .map(|(w, _)| *w)
            .collect();
        js.sort_unstable();
        js.dedup();
        js
    }

    /// The largest worker index the plan touches, if any.
    pub fn max_worker(&self) -> Option<usize> {
        self.events.iter().map(|(w, _)| *w).max()
    }

    /// Whether `worker` is an active member for global round `round`
    /// under this plan: joined (or launch member), not yet retired, not
    /// yet evicted. A retiree is active *through* its retire round; an
    /// evictee is active only strictly before its evict round.
    pub fn active_at(&self, worker: usize, round: u64) -> bool {
        if let Some((join_round, _)) = self.join_of(worker) {
            if round < join_round {
                return false;
            }
        }
        if let Some(retire_round) = self.retire_of(worker) {
            if round > retire_round {
                return false;
            }
        }
        if let Some(evict_round) = self.evict_of(worker) {
            if round >= evict_round {
                return false;
            }
        }
        true
    }

    /// The sorted active member set for global round `round`, out of a
    /// cluster of `capacity` identities.
    pub fn active_set(&self, capacity: usize, round: u64) -> Vec<usize> {
        (0..capacity)
            .filter(|&w| self.active_at(w, round))
            .collect()
    }

    /// Checks the plan against a cluster of `capacity` identities and the
    /// run's [`ToleranceConfig`], returning the first structural problem
    /// as a typed [`ConfigError`] instead of wedging mid-run.
    ///
    /// Rejected shapes: an event naming a worker `>= capacity`; duplicate
    /// events of the same kind for one worker; both a retirement and an
    /// eviction for one worker; a join at round 0 (launch members need no
    /// join event); a leave scheduled at or before the same worker's
    /// join (the identity would never participate); an eviction at round
    /// 0; an admission deadline shorter than the liveness lease (the
    /// controller would presume the joiner dead mid-admission); and a
    /// plan that leaves no active worker at some event round.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ChurnPlanMalformed`] or
    /// [`ConfigError::AdmissionDeadlineBelowLease`] per the shapes above.
    pub fn validate(
        &self,
        capacity: usize,
        tolerance: &ToleranceConfig,
    ) -> Result<(), ConfigError> {
        let malformed = |worker, why| Err(ConfigError::ChurnPlanMalformed { worker, why });
        for &(w, e) in &self.events {
            if w >= capacity {
                return malformed(w, "event names a worker beyond cluster capacity");
            }
            let dup = self
                .events
                .iter()
                .filter(|(ow, oe)| {
                    *ow == w && std::mem::discriminant(oe) == std::mem::discriminant(&e)
                })
                .count();
            if dup > 1 {
                return malformed(w, "duplicate events of the same kind for one worker");
            }
            if self.retire_of(w).is_some() && self.evict_of(w).is_some() {
                return malformed(w, "both a retirement and an eviction for one worker");
            }
            match e {
                ChurnEvent::Join {
                    at_round,
                    admission_deadline_us,
                } => {
                    if at_round == 0 {
                        return malformed(w, "join at round 0; launch members need no join event");
                    }
                    if admission_deadline_us < tolerance.liveness_timeout_us {
                        return Err(ConfigError::AdmissionDeadlineBelowLease {
                            worker: w,
                            deadline_us: admission_deadline_us,
                            lease_us: tolerance.liveness_timeout_us,
                        });
                    }
                }
                ChurnEvent::Retire { at_round } => {
                    if let Some((join_round, _)) = self.join_of(w) {
                        if at_round < join_round {
                            return malformed(w, "retires before it joins");
                        }
                    }
                }
                ChurnEvent::Evict { at_round } => {
                    if at_round == 0 {
                        return malformed(w, "evicted at round 0; the identity never participates");
                    }
                    if let Some((join_round, _)) = self.join_of(w) {
                        if at_round <= join_round {
                            return malformed(w, "evicted at or before its join round");
                        }
                    }
                }
            }
        }
        // The cluster must never drain completely: check every round at
        // which membership changes.
        for &(_, e) in &self.events {
            let r = e.at_round();
            for round in [r, r.saturating_add(1)] {
                if self.active_set(capacity, round).is_empty() {
                    return malformed(
                        usize::MAX,
                        "plan leaves no active worker at some event round",
                    );
                }
            }
        }
        Ok(())
    }
}

/// Per-worker EWMA of observed per-iteration times, the live counterpart
/// of the launch-time probe the paper's §4 grouping keys off.
///
/// Fed virtual-time deltas in the DES and heartbeat/iteration timings in
/// the real runtimes; read by [`regroup_decision`] when the
/// [`RegroupPolicy`] says heterogeneity may have drifted.
#[derive(Debug, Clone)]
pub struct SpeedEstimator {
    alpha: f64,
    ewma_ns: Vec<f64>,
    samples: Vec<u64>,
}

impl SpeedEstimator {
    /// An estimator over `capacity` worker identities with smoothing
    /// factor `alpha` (weight of the newest sample).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    pub fn new(capacity: usize, alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha {alpha} not in (0, 1]"
        );
        SpeedEstimator {
            alpha,
            ewma_ns: vec![0.0; capacity],
            samples: vec![0; capacity],
        }
    }

    /// Records one observed iteration duration for `worker`.
    pub fn observe(&mut self, worker: usize, took: SimDuration) {
        let ns = took.as_nanos() as f64;
        if self.samples[worker] == 0 {
            self.ewma_ns[worker] = ns;
        } else {
            self.ewma_ns[worker] += self.alpha * (ns - self.ewma_ns[worker]);
        }
        self.samples[worker] += 1;
    }

    /// How many samples `worker` has contributed.
    pub fn samples(&self, worker: usize) -> u64 {
        self.samples[worker]
    }

    /// The current estimate for `worker`, if it has any samples.
    pub fn estimate(&self, worker: usize) -> Option<SimDuration> {
        if self.samples[worker] == 0 {
            None
        } else {
            Some(SimDuration::from_nanos(self.ewma_ns[worker].max(1.0) as u64))
        }
    }

    /// The estimates for an explicit member list, or `None` if any member
    /// has no samples yet (a regroup must not run on guesses).
    pub fn estimates(&self, members: &[usize]) -> Option<Vec<SimDuration>> {
        members.iter().map(|&w| self.estimate(w)).collect()
    }

    /// The smallest sample count across `members` (0 for an empty list).
    pub fn min_samples(&self, members: &[usize]) -> u64 {
        members.iter().map(|&w| self.samples[w]).min().unwrap_or(0)
    }

    /// Discards `worker`'s history (e.g. after an eviction, so a reused
    /// identity does not inherit stale speed).
    pub fn forget(&mut self, worker: usize) {
        self.ewma_ns[worker] = 0.0;
        self.samples[worker] = 0;
    }
}

/// When the hierarchical protocol checks for — and commits — an online
/// regroup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegroupPolicy {
    /// Check cadence: consider a regroup every this many global rounds.
    pub check_every_rounds: u64,
    /// Minimum rounds between committed topology swaps (a swap is
    /// disruptive: the PS rebalances keys and caches reset).
    pub cooldown_rounds: u64,
    /// Minimum EWMA samples every active worker must have before its
    /// estimate is trusted.
    pub min_samples: u64,
    /// EWMA smoothing factor handed to [`SpeedEstimator::new`].
    pub alpha: f64,
    /// How far the measured heterogeneity ratio ζ/v must drift from its
    /// value at the last committed grouping before a re-split is even
    /// attempted. 0.0 re-evaluates on every check.
    pub drift_threshold: f64,
}

impl Default for RegroupPolicy {
    fn default() -> Self {
        RegroupPolicy {
            check_every_rounds: 8,
            cooldown_rounds: 16,
            min_samples: 3,
            alpha: 0.3,
            drift_threshold: 0.25,
        }
    }
}

impl RegroupPolicy {
    /// Checks the policy's invariants with a typed error, mirroring
    /// [`ToleranceConfig::validate`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroRegroupCadence`] when `check_every_rounds` is 0
    /// (the check would never fire) or `alpha` leaves `(0, 1]`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.check_every_rounds == 0 || !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(ConfigError::ZeroRegroupCadence);
        }
        Ok(())
    }

    /// Whether round `round` is a check point under the cadence and the
    /// cooldown since `last_swap_round`.
    pub fn due(&self, round: u64, last_swap_round: u64) -> bool {
        round > 0
            && round.is_multiple_of(self.check_every_rounds)
            && round.saturating_sub(last_swap_round) >= self.cooldown_rounds
    }
}

/// The measured heterogeneity ratio ζ/v: the fastest-to-slowest gap over
/// the mean per-iteration time. The paper splits while ζ > v, i.e. while
/// this ratio exceeds 1. Returns 0.0 for fewer than two workers or a
/// zero mean.
pub fn hetero_ratio(times: &[SimDuration]) -> f64 {
    if times.len() < 2 {
        return 0.0;
    }
    let min = times.iter().min().copied().unwrap().as_nanos();
    let max = times.iter().max().copied().unwrap().as_nanos();
    let mean = times.iter().map(SimDuration::as_nanos).sum::<u64>() / times.len() as u64;
    if mean == 0 {
        return 0.0;
    }
    (max - min) as f64 / mean as f64
}

/// Canonicalizes a grouping: members sorted within each group, groups
/// sorted by first member, empty groups dropped. Two groupings are the
/// same partition iff their canonical forms are equal.
pub fn canonical_groups(groups: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = groups
        .iter()
        .filter(|g| !g.is_empty())
        .map(|g| {
            let mut m = g.clone();
            m.sort_unstable();
            m
        })
        .collect();
    out.sort_by_key(|g| g[0]);
    out
}

/// Re-runs the paper's ζ-split ([`partition_groups`]) on live speed
/// estimates and proposes a new grouping when it differs from the
/// current one.
///
/// `members[i]`'s estimated per-iteration time is `times[i]`; both are
/// indexed by *position*, and member ids are global worker ids. Returns
/// the proposed grouping in canonical form ([`canonical_groups`]) only
/// when it is a genuinely different partition of the same member set —
/// `None` means "keep the current topology".
///
/// # Panics
///
/// Panics if `members` and `times` disagree in length.
pub fn regroup_decision(
    current: &[Vec<usize>],
    members: &[usize],
    times: &[SimDuration],
) -> Option<Vec<Vec<usize>>> {
    assert_eq!(
        members.len(),
        times.len(),
        "one speed estimate per member required"
    );
    if members.is_empty() {
        return None;
    }
    let split = partition_groups(times);
    let proposed = canonical_groups(
        &split
            .iter()
            .map(|g| g.iter().map(|&local| members[local]).collect())
            .collect::<Vec<Vec<usize>>>(),
    );
    if proposed == canonical_groups(current) {
        None
    } else {
        Some(proposed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(m: u64) -> SimDuration {
        SimDuration::from_millis(m)
    }

    #[test]
    fn plan_builders_accumulate() {
        let plan = ChurnPlan::none()
            .join(6, 10, 500_000)
            .retire(1, 20)
            .evict(2, 5);
        assert_eq!(plan.events().len(), 3);
        assert_eq!(plan.join_of(6), Some((10, 500_000)));
        assert_eq!(plan.retire_of(1), Some(20));
        assert_eq!(plan.evict_of(2), Some(5));
        assert_eq!(plan.join_of(1), None);
        assert_eq!(plan.max_worker(), Some(6));
        assert_eq!(plan.joiners(), vec![6]);
        assert!(!plan.is_empty());
        assert!(ChurnPlan::none().is_empty());
    }

    #[test]
    fn activity_windows() {
        let plan = ChurnPlan::none()
            .join(3, 10, 500_000)
            .retire(1, 20)
            .evict(2, 5);
        // Launch member with no events: always active.
        assert!(plan.active_at(0, 0));
        assert!(plan.active_at(0, 1_000));
        // Joiner: dormant before its round.
        assert!(!plan.active_at(3, 0));
        assert!(!plan.active_at(3, 9));
        assert!(plan.active_at(3, 10));
        assert!(plan.active_at(3, 99));
        // Retiree: drains through its round inclusive.
        assert!(plan.active_at(1, 20));
        assert!(!plan.active_at(1, 21));
        // Evictee: excluded from its round on.
        assert!(plan.active_at(2, 4));
        assert!(!plan.active_at(2, 5));
        assert_eq!(plan.active_set(4, 0), vec![0, 1, 2]);
        assert_eq!(plan.active_set(4, 10), vec![0, 1, 3]);
        assert_eq!(plan.active_set(4, 30), vec![0, 3]);
    }

    #[test]
    fn join_then_leave_windows() {
        let plan = ChurnPlan::none().join(0, 5, 500_000).retire(0, 9);
        assert!(!plan.active_at(0, 4));
        assert!(plan.active_at(0, 5));
        assert!(plan.active_at(0, 9));
        assert!(!plan.active_at(0, 10));
        plan.validate(2, &ToleranceConfig::default()).unwrap();
    }

    #[test]
    fn validation_rejects_malformed_shapes() {
        let tol = ToleranceConfig::default();
        let cases: Vec<(ChurnPlan, &str)> = vec![
            (
                ChurnPlan::none().join(5, 3, 500_000),
                "beyond cluster capacity",
            ),
            (
                ChurnPlan::none().join(1, 3, 500_000).join(1, 7, 500_000),
                "duplicate events",
            ),
            (
                ChurnPlan::none().retire(1, 3).evict(1, 7),
                "both a retirement and an eviction",
            ),
            (ChurnPlan::none().join(1, 0, 500_000), "join at round 0"),
            (
                ChurnPlan::none().join(1, 8, 500_000).retire(1, 3),
                "retires before it joins",
            ),
            (ChurnPlan::none().evict(1, 0), "evicted at round 0"),
            (
                ChurnPlan::none().join(1, 8, 500_000).evict(1, 8),
                "at or before its join round",
            ),
            (
                ChurnPlan::none()
                    .evict(0, 2)
                    .evict(1, 2)
                    .retire(2, 1)
                    .retire(3, 1),
                "no active worker",
            ),
        ];
        for (plan, needle) in cases {
            match plan.validate(4, &tol) {
                Err(ConfigError::ChurnPlanMalformed { why, .. }) => {
                    assert!(why.contains(needle), "{why:?} missing {needle:?}");
                }
                other => panic!("expected malformed ({needle}), got {other:?}"),
            }
        }
    }

    #[test]
    fn validation_rejects_admission_deadline_below_lease() {
        let tol = ToleranceConfig::default();
        let plan = ChurnPlan::none().join(1, 3, tol.liveness_timeout_us - 1);
        assert_eq!(
            plan.validate(4, &tol),
            Err(ConfigError::AdmissionDeadlineBelowLease {
                worker: 1,
                deadline_us: tol.liveness_timeout_us - 1,
                lease_us: tol.liveness_timeout_us,
            })
        );
        // Exactly the lease is fine.
        ChurnPlan::none()
            .join(1, 3, tol.liveness_timeout_us)
            .validate(4, &tol)
            .unwrap();
        // The error renders readably.
        let msg = ConfigError::AdmissionDeadlineBelowLease {
            worker: 1,
            deadline_us: 10,
            lease_us: 20,
        }
        .to_string();
        assert!(msg.contains("admission deadline"), "{msg}");
    }

    #[test]
    fn estimator_converges_and_gates() {
        let mut est = SpeedEstimator::new(3, 0.5);
        assert_eq!(est.estimate(0), None);
        assert_eq!(est.estimates(&[0, 1]), None);
        for _ in 0..20 {
            est.observe(0, ms(100));
            est.observe(1, ms(400));
        }
        let e0 = est.estimate(0).unwrap();
        let e1 = est.estimate(1).unwrap();
        assert_eq!(e0, ms(100));
        assert_eq!(e1, ms(400));
        assert_eq!(est.samples(0), 20);
        assert_eq!(est.min_samples(&[0, 1, 2]), 0);
        assert_eq!(est.min_samples(&[0, 1]), 20);
        assert_eq!(est.estimates(&[0, 1]), Some(vec![e0, e1]));
        // A drifting worker's estimate follows the drift.
        for _ in 0..20 {
            est.observe(0, ms(500));
        }
        assert!(est.estimate(0).unwrap() > ms(490));
        est.forget(0);
        assert_eq!(est.estimate(0), None);
        assert_eq!(est.min_samples(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "not in (0, 1]")]
    fn estimator_rejects_bad_alpha() {
        let _ = SpeedEstimator::new(2, 0.0);
    }

    #[test]
    fn policy_cadence_and_cooldown() {
        let policy = RegroupPolicy {
            check_every_rounds: 4,
            cooldown_rounds: 8,
            ..RegroupPolicy::default()
        };
        policy.validate().unwrap();
        assert!(!policy.due(0, 0)); // round 0 is launch grouping
        assert!(!policy.due(4, 0)); // inside cooldown
        assert!(policy.due(8, 0));
        assert!(!policy.due(9, 0)); // off-cadence
        assert!(!policy.due(12, 8)); // cooldown since last swap
        assert!(policy.due(16, 8));
        assert!(RegroupPolicy {
            check_every_rounds: 0,
            ..RegroupPolicy::default()
        }
        .validate()
        .is_err());
        assert!(RegroupPolicy {
            alpha: 1.5,
            ..RegroupPolicy::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn hetero_ratio_matches_split_criterion() {
        // ζ = 300 ms, v = 250 ms → ratio 1.2 > 1, the paper splits.
        let r = hetero_ratio(&[ms(100), ms(400)]);
        assert!((r - 1.2).abs() < 1e-9, "{r}");
        assert_eq!(hetero_ratio(&[ms(100)]), 0.0);
        assert_eq!(hetero_ratio(&[]), 0.0);
        assert_eq!(hetero_ratio(&[SimDuration::ZERO, SimDuration::ZERO]), 0.0);
    }

    #[test]
    fn regroup_decision_matches_offline_split() {
        // Active members 0,2,3,5 (1 and 4 left): two clear speed tiers.
        let members = [0usize, 2, 3, 5];
        let times = [ms(100), ms(400), ms(100), ms(400)];
        let current = vec![vec![0, 2, 3, 5]]; // launch: one flat group
        let proposed = regroup_decision(&current, &members, &times).unwrap();
        // Pin against the offline split on the same speed vector.
        let offline = partition_groups(&times);
        let mapped: Vec<Vec<usize>> = offline
            .iter()
            .map(|g| g.iter().map(|&l| members[l]).collect())
            .collect();
        assert_eq!(proposed, canonical_groups(&mapped));
        assert_eq!(proposed, vec![vec![0, 3], vec![2, 5]]);
    }

    #[test]
    fn regroup_decision_keeps_equivalent_partition() {
        let members = [0usize, 1, 2, 3];
        let times = [ms(100), ms(400), ms(100), ms(400)];
        // Current grouping already matches the split (listed in a
        // different order — canonicalization must see through that).
        let current = vec![vec![3, 1], vec![2, 0]];
        assert_eq!(regroup_decision(&current, &members, &times), None);
        // Homogeneous speeds with a flat current topology: no change.
        let flat = vec![vec![0, 1, 2, 3]];
        assert_eq!(regroup_decision(&flat, &members, &[ms(100); 4]), None);
        // Empty member set never proposes anything.
        assert_eq!(regroup_decision(&flat, &[], &[]), None);
    }

    #[test]
    fn regroup_decision_coalesces_when_homogeneous() {
        // A previously split cluster whose speeds converged proposes the
        // flat topology again.
        let members = [0usize, 1, 2, 3];
        let current = vec![vec![0, 1], vec![2, 3]];
        let proposed = regroup_decision(&current, &members, &[ms(100); 4]).unwrap();
        assert_eq!(proposed, vec![vec![0, 1, 2, 3]]);
    }
}
