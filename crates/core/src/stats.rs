//! Run results: what a protocol engine reports when a training run ends.

use rna_simnet::trace::TimeBreakdown;
use rna_simnet::SimDuration;
use rna_training::History;
use rna_workload::trace::WorkloadTrace;

use crate::fault::WorkerFate;
use crate::timeline::Timeline;

/// Why a training run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The evaluation loss reached the configured target.
    TargetReached,
    /// Early stopping fired (loss stopped improving).
    EarlyStopped,
    /// The virtual-time budget ran out.
    MaxTime,
    /// The global-round budget ran out.
    MaxRounds,
    /// The event queue drained (protocol quiesced).
    Idle,
}

/// The full outcome of one simulated training run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Protocol name (e.g. `"rna"`, `"horovod"`).
    pub protocol: String,
    /// Virtual time at which the run stopped.
    pub wall_time: SimDuration,
    /// Number of global synchronization rounds executed.
    pub global_rounds: u64,
    /// Local iterations completed per worker.
    pub worker_iterations: Vec<u64>,
    /// Convergence history (evaluation loss/accuracy over virtual time).
    pub history: History,
    /// Per-worker compute/wait/communicate breakdown.
    pub breakdown: Vec<TimeBreakdown>,
    /// Total bytes the protocol moved on the network.
    pub comm_bytes: u64,
    /// Sum over rounds of the fraction of workers that contributed
    /// gradients (1.0 for BSP; ≈0.5–0.9 for partial collectives).
    pub participation_sum: f64,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Top-5 accuracy at the final evaluation (0 for regression tasks).
    pub final_top5: f64,
    /// Every iteration's compute duration per worker, replayable through
    /// [`rna_workload::ComputeTimeModel::Empirical`].
    pub workload_trace: WorkloadTrace,
    /// Per-worker execution timeline (span transitions, capped).
    pub timeline: Timeline,
    /// Post-mortem verdict per worker (all `Healthy` on fault-free runs).
    pub worker_fates: Vec<WorkerFate>,
    /// Messages the fabric dropped (lossy links, flaps, partitions).
    pub messages_dropped: u64,
    /// Probe rounds re-issued after a timeout (dropped probe or reply).
    pub probe_retries: u64,
    /// Rounds in which some live node was unreachable — a PS exchange was
    /// skipped or a reduce excluded a partitioned member.
    pub partition_rounds: u64,
    /// Controller failovers: times a warm standby bumped the term and took
    /// over after the active controller's lease expired.
    pub controller_failovers: u64,
    /// Probe rounds abandoned and restarted across all controller
    /// failovers (the downtime cost of each takeover).
    pub failover_rounds_lost: u64,
    /// PS shard primaries that crashed and degraded to their replica.
    pub ps_failovers: u64,
    /// Crash-consistent checkpoints written during the run.
    pub checkpoints_written: u64,
    /// Fresh tensor-buffer heap allocations performed by the reduce data
    /// path (cache drain, collective, apply) over the whole run. Always 0
    /// in release builds — the underlying hook is debug-only (see
    /// `rna_tensor::alloc`). With the pooled data path this stays flat
    /// after warm-up; the naive path grows linearly with rounds. Excluded
    /// from bit-identity comparisons: pooling changes where buffers come
    /// from, never the numbers in them.
    pub datapath_allocs: u64,
    /// Bytes the gradient wire path actually put on the network after
    /// encoding (frames: codec payload plus per-message headers). Under
    /// `Compression::Lossless` this equals the legacy (unframed) gradient
    /// charge, so it is a strict subset of [`RunResult::comm_bytes`]
    /// (which also counts probes and control traffic).
    pub bytes_on_wire: u64,
    /// Bytes the selected codec saved versus shipping the same exchanges
    /// losslessly (`lossless-equivalent − bytes_on_wire`; 0 for
    /// `Lossless`).
    pub bytes_saved: u64,
    /// Accumulated L2 norm of the error-feedback residuals left behind by
    /// lossy encodes (one term per encoded gradient; exactly 0.0 for
    /// `Lossless`). A bounded value across a long run is the signature of
    /// a convergent lossy codec.
    pub codec_error_l2: f64,
    /// Workers admitted mid-run under a `ChurnPlan` (each streamed a
    /// model snapshot and granted fresh RNG streams).
    pub workers_joined: u64,
    /// Workers that left mid-run under a `ChurnPlan` — graceful
    /// retirements (final contribution drained) plus evictions.
    pub workers_retired: u64,
    /// Online regroup events: times the hierarchical topology was
    /// re-split from live speed estimates and swapped at a quiesce point.
    /// Always 0 for flat (non-hierarchical) protocols.
    pub regroup_events: u64,
    /// Parameter-server keys (slots) rehomed during regroup rebalancing.
    /// Always 0 when no regroup fires.
    pub ps_keys_rebalanced: u64,
    /// Bytes of model snapshot streamed to joining workers during
    /// admission (parameters only; framing excluded).
    pub snapshot_bytes_streamed: u64,
}

impl RunResult {
    /// Total local iterations across all workers.
    pub fn total_iterations(&self) -> u64 {
        self.worker_iterations.iter().sum()
    }

    /// Mean participation per round (`NaN`-free: 0 when no rounds ran).
    pub fn mean_participation(&self) -> f64 {
        if self.global_rounds == 0 {
            0.0
        } else {
            self.participation_sum / self.global_rounds as f64
        }
    }

    /// Virtual seconds to reach `target` loss, if it was reached.
    pub fn time_to_loss(&self, target: f64) -> Option<f64> {
        self.history.time_to_loss(target)
    }

    /// Final evaluation loss (`None` when nothing was evaluated).
    pub fn final_loss(&self) -> Option<f64> {
        self.history.final_loss()
    }

    /// Final evaluation accuracy.
    pub fn final_accuracy(&self) -> Option<f64> {
        self.history.final_accuracy()
    }

    /// Best (highest) evaluation accuracy seen.
    pub fn best_accuracy(&self) -> Option<f64> {
        self.history.best_accuracy()
    }

    /// Mean virtual time per global round.
    pub fn mean_round_time(&self) -> SimDuration {
        if self.global_rounds == 0 {
            SimDuration::ZERO
        } else {
            self.wall_time / self.global_rounds
        }
    }

    /// Throughput in worker-iterations per virtual second.
    pub fn iteration_throughput(&self) -> f64 {
        let t = self.wall_time.as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.total_iterations() as f64 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunResult {
        let mut history = History::new();
        history.record(1.0, 1, 2.0, 0.3);
        history.record(2.0, 2, 1.0, 0.6);
        RunResult {
            protocol: "test".into(),
            wall_time: SimDuration::from_secs(2),
            global_rounds: 4,
            worker_iterations: vec![3, 5],
            history,
            breakdown: vec![TimeBreakdown::default(); 2],
            comm_bytes: 1000,
            participation_sum: 3.0,
            stop_reason: StopReason::MaxTime,
            final_top5: 0.0,
            workload_trace: WorkloadTrace::new(2),
            timeline: Timeline::default(),
            worker_fates: vec![WorkerFate::Healthy; 2],
            messages_dropped: 0,
            probe_retries: 0,
            partition_rounds: 0,
            controller_failovers: 0,
            failover_rounds_lost: 0,
            ps_failovers: 0,
            checkpoints_written: 0,
            datapath_allocs: 0,
            bytes_on_wire: 0,
            bytes_saved: 0,
            codec_error_l2: 0.0,
            workers_joined: 0,
            workers_retired: 0,
            regroup_events: 0,
            ps_keys_rebalanced: 0,
            snapshot_bytes_streamed: 0,
        }
    }

    #[test]
    fn aggregates() {
        let r = sample();
        assert_eq!(r.total_iterations(), 8);
        assert_eq!(r.mean_participation(), 0.75);
        assert_eq!(r.mean_round_time(), SimDuration::from_millis(500));
        assert_eq!(r.iteration_throughput(), 4.0);
        assert_eq!(r.final_loss(), Some(1.0));
        assert_eq!(r.final_accuracy(), Some(0.6));
        assert_eq!(r.best_accuracy(), Some(0.6));
        assert_eq!(r.time_to_loss(1.5), Some(2.0));
        assert_eq!(r.time_to_loss(0.5), None);
    }

    #[test]
    fn zero_round_run_is_safe() {
        let mut r = sample();
        r.global_rounds = 0;
        r.wall_time = SimDuration::ZERO;
        assert_eq!(r.mean_participation(), 0.0);
        assert_eq!(r.mean_round_time(), SimDuration::ZERO);
        assert_eq!(r.iteration_throughput(), 0.0);
    }
}
