use rna_tensor::codec::Compression;
use serde::{Deserialize, Serialize};

/// Configuration of the RNA protocol.
///
/// The defaults are the paper's operating point: two probes
/// (power-of-two-choices, §3.2), staleness-weighted local accumulation with
/// a bound of 4, dynamic learning-rate scaling (Linear Scaling Rule, §3.3),
/// and a bounded iteration lead so fast workers cannot run arbitrarily far
/// ahead of the global round.
///
/// # Examples
///
/// ```
/// use rna_core::RnaConfig;
///
/// let config = RnaConfig::default().with_probes(3).with_staleness_bound(2);
/// assert_eq!(config.probes, 3);
/// assert_eq!(config.staleness_bound, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RnaConfig {
    /// Number of workers probed per round (`d` in power-of-`d`-choices).
    /// `1` degenerates to pure random initiator selection.
    pub probes: usize,
    /// Maximum number of locally accumulated gradients a worker keeps;
    /// older entries are overwritten (bounded staleness, §3.3).
    pub staleness_bound: usize,
    /// Weight accumulated gradients linearly by recency (§3.3). When
    /// `false`, accumulated gradients are averaged uniformly (ablation).
    pub weighted_accumulation: bool,
    /// Scale the learning rate by the number of contributors each round
    /// (Linear Scaling Rule). When `false`, the base rate is used
    /// unchanged (ablation).
    pub dynamic_lr_scaling: bool,
    /// How many iterations a worker may run ahead of the global round
    /// before pausing.
    pub max_lead: u64,
    /// Probe RPC payload in bytes (probes are "lightweight RPCs").
    pub probe_bytes: u64,
    /// Route reduce rounds through the fused, buffer-pooled data path
    /// (zero steady-state allocations). `false` replays the naive
    /// allocate-per-round path, kept for bit-identity regression tests —
    /// both paths produce bit-identical results.
    pub pooled: bool,
    /// Base probe-retry timeout in virtual microseconds: when the fabric
    /// injects network faults, an election round with no accepted reply
    /// after this long is re-probed, with exponential backoff per retry.
    /// On a reliable fabric the retry timers are never armed.
    pub probe_retry_us: u64,
    /// Gradient wire codec. The default, [`Compression::Lossless`], is
    /// bit-identical (values, bytes and virtual time) to the pre-codec wire
    /// path. Lossy codecs shrink every gradient exchange and carry their
    /// quantization error forward through per-worker error-feedback
    /// residuals, so training stays convergent.
    pub compression: Compression,
}

impl Default for RnaConfig {
    fn default() -> Self {
        RnaConfig {
            probes: 2,
            staleness_bound: 4,
            weighted_accumulation: true,
            dynamic_lr_scaling: true,
            max_lead: 8,
            probe_bytes: 64,
            pooled: true,
            probe_retry_us: 2_000,
            compression: Compression::Lossless,
        }
    }
}

impl RnaConfig {
    /// Sets the probe count.
    ///
    /// # Panics
    ///
    /// Panics if `probes == 0`.
    pub fn with_probes(mut self, probes: usize) -> Self {
        assert!(probes > 0, "need at least one probe");
        self.probes = probes;
        self
    }

    /// Sets the bounded-staleness cache depth.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn with_staleness_bound(mut self, bound: usize) -> Self {
        assert!(bound > 0, "staleness bound must be at least one");
        self.staleness_bound = bound;
        self
    }

    /// Enables or disables staleness-weighted accumulation.
    pub fn with_weighted_accumulation(mut self, on: bool) -> Self {
        self.weighted_accumulation = on;
        self
    }

    /// Enables or disables dynamic learning-rate scaling.
    pub fn with_dynamic_lr_scaling(mut self, on: bool) -> Self {
        self.dynamic_lr_scaling = on;
        self
    }

    /// Sets the maximum iteration lead.
    ///
    /// # Panics
    ///
    /// Panics if `lead == 0`.
    pub fn with_max_lead(mut self, lead: u64) -> Self {
        assert!(lead > 0, "max lead must be at least one");
        self.max_lead = lead;
        self
    }

    /// Enables or disables the pooled zero-allocation data path.
    pub fn with_pooled(mut self, on: bool) -> Self {
        self.pooled = on;
        self
    }

    /// Sets the base probe-retry timeout (doubling per retry).
    ///
    /// # Panics
    ///
    /// Panics if `us == 0`.
    pub fn with_probe_retry_us(mut self, us: u64) -> Self {
        assert!(us > 0, "probe retry timeout must be positive");
        self.probe_retry_us = us;
        self
    }

    /// Selects the gradient wire codec.
    ///
    /// # Panics
    ///
    /// Panics if the codec is `TopK` with `permille` outside `1..=1000`.
    pub fn with_compression(mut self, compression: Compression) -> Self {
        if let Compression::TopK { permille } = compression {
            assert!(
                (1..=1000).contains(&permille),
                "TopK permille must be in 1..=1000, got {permille}"
            );
        }
        self.compression = compression;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_operating_point() {
        let c = RnaConfig::default();
        assert_eq!(c.probes, 2);
        assert!(c.weighted_accumulation);
        assert!(c.dynamic_lr_scaling);
        assert!(c.staleness_bound >= 1);
        assert!(c.max_lead >= 1);
        assert!(c.pooled, "the pooled data path is the default");
        assert_eq!(
            c.compression,
            Compression::Lossless,
            "lossless wire is the default — pre-codec runs stay bit-identical"
        );
    }

    #[test]
    fn compression_builder_sets_codec() {
        let c = RnaConfig::default().with_compression(Compression::Fp16);
        assert_eq!(c.compression, Compression::Fp16);
    }

    #[test]
    #[should_panic(expected = "permille")]
    fn rejects_invalid_topk_fraction() {
        RnaConfig::default().with_compression(Compression::TopK { permille: 1001 });
    }

    #[test]
    fn builders_chain() {
        let c = RnaConfig::default()
            .with_probes(4)
            .with_staleness_bound(2)
            .with_weighted_accumulation(false)
            .with_dynamic_lr_scaling(false)
            .with_max_lead(3);
        assert_eq!(c.probes, 4);
        assert_eq!(c.staleness_bound, 2);
        assert!(!c.weighted_accumulation);
        assert!(!c.dynamic_lr_scaling);
        assert_eq!(c.max_lead, 3);
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn rejects_zero_probes() {
        RnaConfig::default().with_probes(0);
    }

    #[test]
    #[should_panic(expected = "staleness bound")]
    fn rejects_zero_staleness() {
        RnaConfig::default().with_staleness_bound(0);
    }
}
