//! # rna-core
//!
//! The paper's contribution: **RNA — Randomized Non-blocking AllReduce**
//! (Yang, Rang, Cheng; Middleware '20), plus the simulation harness every
//! synchronization protocol in this workspace runs on.
//!
//! ## The protocol
//!
//! Ring AllReduce under Bulk Synchronous Parallel waits for the slowest
//! worker every iteration. RNA relaxes the barrier in three moves:
//!
//! 1. **Randomized initiator with power-of-two-choices probing**
//!    ([`probe`]) — a central scheduler that keeps *no* progress state
//!    probes `d = 2` random workers per round; the first to have a gradient
//!    ready becomes the initiator and forces the collective (§3.1–3.2).
//! 2. **Partial, non-blocking AllReduce** ([`rna`], building on
//!    `rna-collectives`) — workers that are not ready contribute a null
//!    gradient; contributors are averaged with weight `W = 1/Σw` and the
//!    learning rate is rescaled by `Σw` (Linear Scaling Rule, Alg. 2).
//!    Compute and communication run on separate tracks, so workers keep
//!    training across iterations; lagging gradients accumulate in a
//!    [`cache::GradientCache`] with staleness-linear weights and bounded
//!    staleness (§3.3, Fig. 4).
//! 3. **Hierarchical synchronization** ([`hier`], [`grouping`]) — under
//!    *deterministic* heterogeneity the cluster is recursively split into
//!    speed-homogeneous groups (while ζ > v); RNA runs inside each group and
//!    groups exchange parameters asynchronously through a parameter server,
//!    with the group initiator broadcasting the pulled model (§4, Fig. 5).
//!
//! ## The harness
//!
//! [`sim`] is a deterministic discrete-event engine that owns the training
//! state (one model replica, optimizer, and batch stream per worker; real
//! gradients from `rna-training`) and delegates *synchronization policy* to
//! a [`sim::Protocol`] implementation. RNA lives here; Horovod-style BSP,
//! AD-PSGD, eager-SGD, and SGP live in `rna-baselines` as other
//! implementations of the same trait, which is what makes the paper's
//! head-to-head comparisons apples-to-apples.
//!
//! # Examples
//!
//! ```
//! use rna_core::rna::RnaProtocol;
//! use rna_core::sim::{Engine, TrainSpec};
//! use rna_core::RnaConfig;
//!
//! let spec = TrainSpec::smoke_test(4, 42);
//! let protocol = RnaProtocol::new(4, RnaConfig::default(), 7);
//! let result = Engine::new(spec, protocol).run();
//! assert!(result.global_rounds > 0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod cache;
mod config;
pub mod fault;
pub mod grouping;
pub mod hier;
pub mod membership;
pub mod probe;
pub mod recovery;
pub mod rna;
pub mod sim;
pub mod stats;
pub mod timeline;

pub use config::RnaConfig;
pub use fault::{FaultPlan, ToleranceConfig, WorkerFate, WorkerFault};
pub use membership::{ChurnEvent, ChurnPlan, RegroupPolicy, SpeedEstimator};
pub use recovery::{CheckpointStore, RecoveryConfig, RecoveryError, RoundJournal};
pub use rna_tensor::Compression;
pub use stats::{RunResult, StopReason};
