//! Execution timelines: the Figure 3/4 view of a run.
//!
//! The engine records every span transition (compute → wait → communicate)
//! per worker; [`Timeline`] turns the log into per-worker segments and
//! renders an ASCII gantt chart, letting you *see* the barrier of Figure
//! 3(a) collapse into the overlap of Figure 3(b) when switching from BSP
//! to RNA.

use rna_simnet::trace::{SpanEvent, SpanKind};
use rna_simnet::{SimDuration, SimTime};

/// One contiguous activity segment of a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// What the worker was doing.
    pub kind: SpanKind,
    /// Segment start.
    pub start: SimTime,
    /// Segment end.
    pub end: SimTime,
}

/// Per-worker execution segments reconstructed from a span log.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    per_worker: Vec<Vec<Segment>>,
    end: SimTime,
}

impl Timeline {
    /// Builds the timeline from a transition log, closing every open span
    /// at `end`.
    pub fn from_log(num_workers: usize, log: &[SpanEvent], end: SimTime) -> Self {
        let mut per_worker: Vec<Vec<Segment>> = vec![Vec::new(); num_workers];
        let mut open: Vec<Option<(SpanKind, SimTime)>> = vec![None; num_workers];
        for &(w, kind, at) in log {
            if w >= num_workers {
                continue;
            }
            if let Some((prev, start)) = open[w].take() {
                if at > start {
                    per_worker[w].push(Segment {
                        kind: prev,
                        start,
                        end: at,
                    });
                }
            }
            open[w] = Some((kind, at));
        }
        for (w, slot) in open.into_iter().enumerate() {
            if let Some((kind, start)) = slot {
                if end > start {
                    per_worker[w].push(Segment { kind, start, end });
                }
            }
        }
        Timeline { per_worker, end }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.per_worker.len()
    }

    /// The segments of one worker.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn segments(&self, worker: usize) -> &[Segment] {
        &self.per_worker[worker]
    }

    /// The instant the timeline ends.
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// The dominant activity of `worker` during `[at, at + dt)`, by
    /// overlap; `None` when nothing is recorded there.
    pub fn activity_at(&self, worker: usize, at: SimTime, dt: SimDuration) -> Option<SpanKind> {
        let lo = at;
        let hi = at + dt;
        let mut best: Option<(SpanKind, u64)> = None;
        for s in &self.per_worker[worker] {
            let ov_lo = s.start.max(lo);
            let ov_hi = s.end.min(hi);
            if ov_hi > ov_lo {
                let overlap = (ov_hi - ov_lo).as_nanos();
                if best.is_none_or(|(_, b)| overlap > b) {
                    best = Some((s.kind, overlap));
                }
            }
        }
        best.map(|(k, _)| k)
    }

    /// Renders an ASCII gantt: one row per worker, `width` columns covering
    /// `[from, until)`. `C` = compute, `.` = wait, `M` = communicate
    /// (message), space = nothing recorded.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `until <= from`.
    pub fn render_gantt(&self, from: SimTime, until: SimTime, width: usize) -> String {
        assert!(width > 0, "gantt needs at least one column");
        assert!(until > from, "empty gantt window");
        let total = until - from;
        let dt = total / width as u64;
        let dt = if dt.is_zero() {
            SimDuration::from_nanos(1)
        } else {
            dt
        };
        let mut out = String::new();
        out.push_str(&format!(
            "timeline {from} .. {until}  (C=compute  .=wait  M=communicate)\n"
        ));
        for w in 0..self.num_workers() {
            out.push_str(&format!("w{w:<3} "));
            for col in 0..width {
                let at = from + dt * col as u64;
                let ch = match self.activity_at(w, at, dt) {
                    Some(SpanKind::Compute) => 'C',
                    Some(SpanKind::Wait) => '.',
                    Some(SpanKind::Communicate) => 'M',
                    None => ' ',
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }

    /// Fraction of `[SimTime::ZERO, end)` that `worker` spent in `kind`.
    pub fn fraction(&self, worker: usize, kind: SpanKind) -> f64 {
        let total = self.end.as_nanos().max(1) as f64;
        let in_kind: u64 = self.per_worker[worker]
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| (s.end - s.start).as_nanos())
            .sum();
        in_kind as f64 / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn sample() -> Timeline {
        let log = vec![
            (0, SpanKind::Compute, t(0)),
            (1, SpanKind::Compute, t(0)),
            (0, SpanKind::Wait, t(10)),
            (1, SpanKind::Communicate, t(20)),
            (0, SpanKind::Compute, t(30)),
        ];
        Timeline::from_log(2, &log, t(40))
    }

    #[test]
    fn segments_reconstructed() {
        let tl = sample();
        assert_eq!(tl.num_workers(), 2);
        let w0 = tl.segments(0);
        assert_eq!(w0.len(), 3);
        assert_eq!(w0[0].kind, SpanKind::Compute);
        assert_eq!(w0[0].end, t(10));
        assert_eq!(w0[1].kind, SpanKind::Wait);
        assert_eq!(w0[2].end, t(40));
        let w1 = tl.segments(1);
        assert_eq!(w1.len(), 2);
        assert_eq!(w1[1].kind, SpanKind::Communicate);
    }

    #[test]
    fn activity_lookup_picks_dominant() {
        let tl = sample();
        assert_eq!(
            tl.activity_at(0, t(5), SimDuration::from_millis(2)),
            Some(SpanKind::Compute)
        );
        assert_eq!(
            tl.activity_at(0, t(15), SimDuration::from_millis(2)),
            Some(SpanKind::Wait)
        );
        // Window [8, 14) overlaps compute (2ms) and wait (4ms) → wait.
        assert_eq!(
            tl.activity_at(0, t(8), SimDuration::from_millis(6)),
            Some(SpanKind::Wait)
        );
        assert_eq!(tl.activity_at(0, t(45), SimDuration::from_millis(1)), None);
    }

    #[test]
    fn gantt_renders_rows() {
        let tl = sample();
        let g = tl.render_gantt(t(0), t(40), 40);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("w0"));
        assert!(lines[1].contains('C'));
        assert!(lines[1].contains('.'));
        assert!(lines[2].contains('M'));
    }

    #[test]
    fn fractions_sum_to_one_when_fully_covered() {
        let tl = sample();
        let sum: f64 = [SpanKind::Compute, SpanKind::Wait, SpanKind::Communicate]
            .into_iter()
            .map(|k| tl.fraction(0, k))
            .sum();
        assert!((sum - 1.0).abs() < 1e-9, "{sum}");
    }

    #[test]
    fn empty_log_is_empty_timeline() {
        let tl = Timeline::from_log(2, &[], t(10));
        assert!(tl.segments(0).is_empty());
        assert_eq!(tl.fraction(0, SpanKind::Compute), 0.0);
        let g = tl.render_gantt(t(0), t(10), 10);
        assert!(g.lines().nth(1).unwrap().ends_with(&" ".repeat(10)));
    }

    #[test]
    #[should_panic(expected = "empty gantt")]
    fn gantt_rejects_empty_window() {
        sample().render_gantt(t(5), t(5), 10);
    }
}
