//! The fault model shared by the two execution worlds.
//!
//! The paper's claim is that partial collectives earn their keep in the
//! failure regime, not just under benign jitter — so the discrete-event
//! simulator ([`crate::sim`]) and the threaded runtime (`rna-runtime`)
//! must agree on *what* a fault is and *how* the protocol reacts. This
//! module is the single source of those semantics:
//!
//! * [`FaultPlan`] / [`WorkerFault`] — a seedable, deterministic injection
//!   script (crash at iteration `k`, hang for a duration, run slow
//!   forever) consumed by both worlds. The simulator takes crashes
//!   natively (`TrainSpec::with_fault_plan`); the threaded runtime
//!   executes all three kinds on real OS threads.
//! * [`WorkerFate`] — the post-mortem verdict both worlds report.
//! * [`live_majority`] / [`probe_round_stalled`] — the two predicates that
//!   decide when an eager-majority round may fire and when an RNA probe
//!   round must be resampled. Both the simulator's `GroupState` and the
//!   threaded controller call these, so the worlds cannot drift.
//! * The liveness timeouts the threaded controller uses to presume a
//!   silent worker dead. The simulator does not need them (its crashes are
//!   delivered as exact events), but they live here because they *define*
//!   the crash semantics the threaded world approximates.

/// One injected fault against one worker.
///
/// Iteration indices count completed local iterations: a fault `at_iter: 5`
/// triggers when the worker would otherwise begin its 6th iteration, so the
/// worker completes exactly 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// The worker dies permanently after completing `at_iter` iterations.
    /// Its final cached gradient is discarded, never reduced.
    CrashAt {
        /// Completed-iteration count at which the worker dies.
        at_iter: u64,
    },
    /// The worker freezes for `for_us` microseconds after completing
    /// `at_iter` iterations, then resumes. While frozen it sends no
    /// heartbeats; a hang longer than [`LIVENESS_TIMEOUT_US`] is
    /// indistinguishable from a crash until the worker returns.
    HangAt {
        /// Completed-iteration count at which the hang starts.
        at_iter: u64,
        /// Hang duration in microseconds of real (threaded) time.
        for_us: u64,
    },
    /// From `from_iter` on, every iteration takes `extra_us` additional
    /// microseconds — a persistent straggler, not a failure. The worker
    /// keeps heartbeating and stays live.
    SlowFrom {
        /// Completed-iteration count at which the slowdown begins.
        from_iter: u64,
        /// Extra per-iteration compute time in microseconds.
        extra_us: u64,
    },
}

impl WorkerFault {
    /// The iteration at which this fault first bites.
    pub fn trigger_iter(&self) -> u64 {
        match *self {
            WorkerFault::CrashAt { at_iter } => at_iter,
            WorkerFault::HangAt { at_iter, .. } => at_iter,
            WorkerFault::SlowFrom { from_iter, .. } => from_iter,
        }
    }
}

/// A deterministic injection script: which worker suffers which fault.
///
/// Plans are plain data — no randomness of their own — so the same plan
/// fed to the simulator and the threaded runtime injects the same
/// failures, which is what makes the cross-world fault tests meaningful.
///
/// # Examples
///
/// ```
/// use rna_core::fault::{FaultPlan, WorkerFault};
///
/// let plan = FaultPlan::none().crash(3, 5).slow(1, 0, 30_000);
/// assert_eq!(plan.faults().len(), 2);
/// assert_eq!(
///     plan.crash_iter(3),
///     Some(5),
/// );
/// assert!(matches!(
///     plan.for_worker(1).next(),
///     Some(WorkerFault::SlowFrom { .. })
/// ));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<(usize, WorkerFault)>,
}

impl FaultPlan {
    /// The empty plan: every worker runs healthy.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a crash: `worker` dies after completing `at_iter` iterations.
    pub fn crash(mut self, worker: usize, at_iter: u64) -> Self {
        self.faults.push((worker, WorkerFault::CrashAt { at_iter }));
        self
    }

    /// Adds a hang: `worker` freezes for `for_us` microseconds after
    /// completing `at_iter` iterations.
    pub fn hang(mut self, worker: usize, at_iter: u64, for_us: u64) -> Self {
        self.faults
            .push((worker, WorkerFault::HangAt { at_iter, for_us }));
        self
    }

    /// Adds a permanent slowdown: from `from_iter` on, `worker` takes
    /// `extra_us` extra microseconds per iteration.
    pub fn slow(mut self, worker: usize, from_iter: u64, extra_us: u64) -> Self {
        self.faults.push((
            worker,
            WorkerFault::SlowFrom {
                from_iter,
                extra_us,
            },
        ));
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// All `(worker, fault)` entries in insertion order.
    pub fn faults(&self) -> &[(usize, WorkerFault)] {
        &self.faults
    }

    /// The faults aimed at one worker.
    pub fn for_worker(&self, worker: usize) -> impl Iterator<Item = WorkerFault> + '_ {
        self.faults
            .iter()
            .filter(move |(w, _)| *w == worker)
            .map(|(_, f)| *f)
    }

    /// The iteration at which `worker` crashes, if the plan kills it.
    pub fn crash_iter(&self, worker: usize) -> Option<u64> {
        self.for_worker(worker).find_map(|f| match f {
            WorkerFault::CrashAt { at_iter } => Some(at_iter),
            _ => None,
        })
    }

    /// The largest worker index the plan touches, if any (used to validate
    /// a plan against a cluster size).
    pub fn max_worker(&self) -> Option<usize> {
        self.faults.iter().map(|(w, _)| *w).max()
    }
}

/// The post-mortem verdict on one worker, reported by both worlds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkerFate {
    /// Ran to the end of training without incident.
    #[default]
    Healthy,
    /// Died permanently after completing `at_iter` iterations.
    Crashed {
        /// Completed-iteration count at death.
        at_iter: u64,
    },
    /// Froze at `at_iter` (and, in the threaded world, later recovered —
    /// a hang that outlives the run is reported as [`WorkerFate::Crashed`]
    /// by the controller's liveness verdict, not here).
    Hung {
        /// Completed-iteration count at which the hang started.
        at_iter: u64,
    },
    /// Ran as a persistent straggler from `from_iter` on.
    Slowed {
        /// Completed-iteration count at which the slowdown began.
        from_iter: u64,
    },
}

impl WorkerFate {
    /// Whether the worker was dead (permanently) at the end of the run.
    pub fn is_dead(&self) -> bool {
        matches!(self, WorkerFate::Crashed { .. })
    }
}

/// How many ready workers an eager-majority round needs before it may
/// fire, given the number of *live* members. Crashed workers shrink the
/// electorate: a majority of survivors, never less than one.
///
/// Both the simulated eager-SGD baseline and the threaded
/// `SyncMode::EagerMajority` controller call this — the threaded majority
/// loop previously hard-coded `n / 2 + 1` over all workers and therefore
/// spun forever once half the cluster died.
pub fn live_majority(live_members: usize) -> usize {
    (live_members / 2 + 1).max(1)
}

/// Whether an in-flight probe round can no longer elect an initiator
/// because every probed member is dead, and must be resampled from the
/// live set. `probed` holds member-local indices into `live`.
///
/// Shared by the simulator's `GroupState::handle_crash` and the threaded
/// controller's re-probe loop.
pub fn probe_round_stalled(probed: &[usize], live: &[bool]) -> bool {
    !probed.is_empty() && probed.iter().all(|&l| !live[l])
}

/// Real-time heartbeat age (microseconds) past which the threaded
/// controller presumes a silent worker dead. Chosen ≫ any benign compute
/// interval the test/bench configurations use (tens of milliseconds), and
/// ≪ the round deadline, so crashes are detected within a few rounds.
pub const LIVENESS_TIMEOUT_US: u64 = 150_000;

/// How long (microseconds) the threaded RNA controller waits on an
/// unresponsive probed set before resampling initiator candidates from the
/// live workers (re-probe backoff).
pub const PROBE_BACKOFF_US: u64 = 2_000;

/// Hard per-round deadline (microseconds) in the threaded runtime: a
/// round that cannot assemble any contribution by the deadline is
/// completed *degraded* (no update applied) rather than blocking forever.
pub const ROUND_DEADLINE_US: u64 = 5_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builders_accumulate() {
        let plan = FaultPlan::none().crash(0, 3).hang(1, 4, 500).slow(2, 0, 9);
        assert_eq!(plan.faults().len(), 3);
        assert_eq!(plan.crash_iter(0), Some(3));
        assert_eq!(plan.crash_iter(1), None);
        assert_eq!(plan.max_worker(), Some(2));
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn trigger_iters() {
        assert_eq!(WorkerFault::CrashAt { at_iter: 7 }.trigger_iter(), 7);
        assert_eq!(
            WorkerFault::HangAt {
                at_iter: 2,
                for_us: 1
            }
            .trigger_iter(),
            2
        );
        assert_eq!(
            WorkerFault::SlowFrom {
                from_iter: 4,
                extra_us: 1
            }
            .trigger_iter(),
            4
        );
    }

    #[test]
    fn majority_shrinks_with_deaths() {
        assert_eq!(live_majority(4), 3);
        assert_eq!(live_majority(3), 2);
        assert_eq!(live_majority(2), 2);
        assert_eq!(live_majority(1), 1);
        // Even an empty electorate demands one contributor, so a fully
        // dead cluster can never fire a round by accident.
        assert_eq!(live_majority(0), 1);
    }

    #[test]
    fn stalled_probe_rounds() {
        let live = [true, false, false, true];
        assert!(probe_round_stalled(&[1, 2], &live));
        assert!(!probe_round_stalled(&[1, 3], &live));
        assert!(!probe_round_stalled(&[], &live));
    }

    #[test]
    fn fates_report_death() {
        assert!(WorkerFate::Crashed { at_iter: 0 }.is_dead());
        assert!(!WorkerFate::Healthy.is_dead());
        assert!(!WorkerFate::Hung { at_iter: 1 }.is_dead());
        assert!(!WorkerFate::Slowed { from_iter: 1 }.is_dead());
    }
}
