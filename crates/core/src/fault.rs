//! The fault model shared by the two execution worlds.
//!
//! The paper's claim is that partial collectives earn their keep in the
//! failure regime, not just under benign jitter — so the discrete-event
//! simulator ([`crate::sim`]) and the threaded runtime (`rna-runtime`)
//! must agree on *what* a fault is and *how* the protocol reacts. This
//! module is the single source of those semantics:
//!
//! * [`FaultPlan`] / [`WorkerFault`] — a seedable, deterministic injection
//!   script (crash at iteration `k`, hang for a duration, run slow
//!   forever) consumed by both worlds. The simulator takes crashes
//!   natively (`TrainSpec::with_fault_plan`); the threaded runtime
//!   executes all three kinds on real OS threads.
//! * [`WorkerFate`] — the post-mortem verdict both worlds report.
//! * [`live_majority`] / [`probe_round_stalled`] — the two predicates that
//!   decide when an eager-majority round may fire and when an RNA probe
//!   round must be resampled. Both the simulator's `GroupState` and the
//!   threaded controller call these, so the worlds cannot drift.
//! * [`NetFaultPlan`] — the network-level counterpart: per-link message
//!   drop probabilities, link flaps (timed down-windows), and timed
//!   partitions. It compiles to the `rna_simnet::NetFaults` mechanism that
//!   both the DES fabric and the threaded runtime's channel shim execute.
//! * [`ToleranceConfig`] — the liveness/retry/deadline timeouts the
//!   threaded controller uses to presume a silent worker dead. The
//!   simulator does not need them (its crashes are delivered as exact
//!   events), but they live here because they *define* the crash semantics
//!   the threaded world approximates.

use rna_simnet::{NetFaults, SimDuration, SimTime};

/// One injected fault against one worker.
///
/// Iteration indices count completed local iterations: a fault `at_iter: 5`
/// triggers when the worker would otherwise begin its 6th iteration, so the
/// worker completes exactly 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// The worker dies permanently after completing `at_iter` iterations.
    /// Its final cached gradient is discarded, never reduced.
    CrashAt {
        /// Completed-iteration count at which the worker dies.
        at_iter: u64,
    },
    /// The worker freezes for `for_us` microseconds after completing
    /// `at_iter` iterations, then resumes. While frozen it sends no
    /// heartbeats; a hang longer than [`LIVENESS_TIMEOUT_US`] is
    /// indistinguishable from a crash until the worker returns.
    HangAt {
        /// Completed-iteration count at which the hang starts.
        at_iter: u64,
        /// Hang duration in microseconds of real (threaded) time.
        for_us: u64,
    },
    /// From `from_iter` on, every iteration takes `extra_us` additional
    /// microseconds — a persistent straggler, not a failure. The worker
    /// keeps heartbeating and stays live.
    SlowFrom {
        /// Completed-iteration count at which the slowdown begins.
        from_iter: u64,
        /// Extra per-iteration compute time in microseconds.
        extra_us: u64,
    },
    /// Gray degradation: from `from_iter` on, the worker's extra
    /// per-iteration time *ramps up* by `step_us` each iteration, capped
    /// at `cap_us` — a node quietly souring (thermal throttling, a dying
    /// disk, a noisy neighbour) rather than failing outright. At
    /// iteration `i >= from_iter` the extra delay is
    /// `min((i - from_iter + 1) * step_us, cap_us)`. Distinct from
    /// [`WorkerFault::SlowFrom`]'s constant persistent straggler and from
    /// the paper's random per-iteration stragglers; this is the regime
    /// online regrouping reacts to, because the launch-time speed probe
    /// saw a healthy worker.
    GrayFrom {
        /// Completed-iteration count at which the degradation begins.
        from_iter: u64,
        /// Per-iteration ramp increment in microseconds.
        step_us: u64,
        /// Ceiling on the extra per-iteration time in microseconds.
        cap_us: u64,
    },
    /// The worker crashes after completing `at_iter` iterations, then
    /// comes back `rejoin_after_us` microseconds later: it pulls the
    /// current model, is re-admitted to the liveness view, and resumes
    /// contributing. Gradients cached at crash time are lost, exactly as
    /// for [`WorkerFault::CrashAt`].
    RestartAt {
        /// Completed-iteration count at which the worker dies.
        at_iter: u64,
        /// Dwell time between the crash and the rejoin, in microseconds
        /// (virtual time in the simulator, real time on threads).
        rejoin_after_us: u64,
    },
}

impl WorkerFault {
    /// The iteration at which this fault first bites.
    pub fn trigger_iter(&self) -> u64 {
        match *self {
            WorkerFault::CrashAt { at_iter } => at_iter,
            WorkerFault::HangAt { at_iter, .. } => at_iter,
            WorkerFault::SlowFrom { from_iter, .. } => from_iter,
            WorkerFault::GrayFrom { from_iter, .. } => from_iter,
            WorkerFault::RestartAt { at_iter, .. } => at_iter,
        }
    }

    /// The extra compute delay this fault (if it is a slowdown) adds to
    /// iteration `iter`, in microseconds. Both worlds call this so the
    /// constant-straggler and gray-ramp arithmetic cannot drift.
    pub fn slowdown_at(&self, iter: u64) -> u64 {
        match *self {
            WorkerFault::SlowFrom {
                from_iter,
                extra_us,
            } if iter >= from_iter => extra_us,
            WorkerFault::GrayFrom {
                from_iter,
                step_us,
                cap_us,
            } if iter >= from_iter => (iter - from_iter + 1).saturating_mul(step_us).min(cap_us),
            _ => 0,
        }
    }
}

/// A deterministic injection script: which worker suffers which fault.
///
/// Plans are plain data — no randomness of their own — so the same plan
/// fed to the simulator and the threaded runtime injects the same
/// failures, which is what makes the cross-world fault tests meaningful.
///
/// # Examples
///
/// ```
/// use rna_core::fault::{FaultPlan, WorkerFault};
///
/// let plan = FaultPlan::none().crash(3, 5).slow(1, 0, 30_000);
/// assert_eq!(plan.faults().len(), 2);
/// assert_eq!(
///     plan.crash_iter(3),
///     Some(5),
/// );
/// assert!(matches!(
///     plan.for_worker(1).next(),
///     Some(WorkerFault::SlowFrom { .. })
/// ));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<(usize, WorkerFault)>,
    /// Global rounds at which the *active controller* dies (one failover
    /// each; the warm standby takes over after the lease expires).
    controller_crashes: Vec<u64>,
    /// `(shard, round)` pairs: the primary replica of PS shard `shard`
    /// dies at global round `round` and pulls degrade to its mirror.
    ps_crashes: Vec<(usize, u64)>,
}

impl FaultPlan {
    /// The empty plan: every worker runs healthy.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a crash: `worker` dies after completing `at_iter` iterations.
    pub fn crash(mut self, worker: usize, at_iter: u64) -> Self {
        self.faults.push((worker, WorkerFault::CrashAt { at_iter }));
        self
    }

    /// Adds a hang: `worker` freezes for `for_us` microseconds after
    /// completing `at_iter` iterations.
    pub fn hang(mut self, worker: usize, at_iter: u64, for_us: u64) -> Self {
        self.faults
            .push((worker, WorkerFault::HangAt { at_iter, for_us }));
        self
    }

    /// Adds a permanent slowdown: from `from_iter` on, `worker` takes
    /// `extra_us` extra microseconds per iteration.
    pub fn slow(mut self, worker: usize, from_iter: u64, extra_us: u64) -> Self {
        self.faults.push((
            worker,
            WorkerFault::SlowFrom {
                from_iter,
                extra_us,
            },
        ));
        self
    }

    /// Adds a gray-degradation ramp: from `from_iter` on, `worker`'s
    /// extra per-iteration time grows by `step_us` each iteration, capped
    /// at `cap_us`. See [`WorkerFault::GrayFrom`].
    pub fn gray(mut self, worker: usize, from_iter: u64, step_us: u64, cap_us: u64) -> Self {
        self.faults.push((
            worker,
            WorkerFault::GrayFrom {
                from_iter,
                step_us,
                cap_us,
            },
        ));
        self
    }

    /// Adds a crash-restart: `worker` dies after completing `at_iter`
    /// iterations, then rejoins `rejoin_after_us` microseconds later,
    /// pulling the current model and resuming contribution.
    pub fn restart(mut self, worker: usize, crash_iter: u64, rejoin_after_us: u64) -> Self {
        self.faults.push((
            worker,
            WorkerFault::RestartAt {
                at_iter: crash_iter,
                rejoin_after_us,
            },
        ));
        self
    }

    /// Adds a controller crash: the *active controller* dies as global
    /// round `at_round` begins. Probes already in flight are lost, workers
    /// keep computing into their caches, and the warm standby takes over
    /// once the controller's lease expires — bumping the term so stale
    /// replies from the dead incarnation are harmless.
    ///
    /// Unlike the worker faults, this targets the control plane (node `n`
    /// in the simulator's numbering), so it is not subject to the
    /// `max_worker` cluster-size validation.
    pub fn crash_controller(mut self, at_round: u64) -> Self {
        self.controller_crashes.push(at_round);
        self.controller_crashes.sort_unstable();
        self
    }

    /// Adds a PS shard crash: the primary replica of shard `shard` dies at
    /// global round `at_round`. Subsequent pushes and pulls for that shard
    /// degrade to its mirror (read-repaired up to the crash) instead of
    /// wedging the hierarchical exchange.
    pub fn crash_ps_shard(mut self, shard: usize, at_round: u64) -> Self {
        self.ps_crashes.push((shard, at_round));
        self
    }

    /// The sorted global rounds at which the active controller dies.
    pub fn controller_crashes(&self) -> &[u64] {
        &self.controller_crashes
    }

    /// The `(shard, round)` PS-shard crashes in insertion order.
    pub fn ps_shard_crashes(&self) -> &[(usize, u64)] {
        &self.ps_crashes
    }

    /// Whether the plan injects any control-plane fault (controller or PS
    /// shard crash).
    pub fn has_control_faults(&self) -> bool {
        !self.controller_crashes.is_empty() || !self.ps_crashes.is_empty()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && !self.has_control_faults()
    }

    /// All `(worker, fault)` entries in insertion order.
    pub fn faults(&self) -> &[(usize, WorkerFault)] {
        &self.faults
    }

    /// The faults aimed at one worker.
    pub fn for_worker(&self, worker: usize) -> impl Iterator<Item = WorkerFault> + '_ {
        self.faults
            .iter()
            .filter(move |(w, _)| *w == worker)
            .map(|(_, f)| *f)
    }

    /// The iteration at which `worker` crashes *permanently*, if the plan
    /// kills it for good. Crash-restarts are not reported here — see
    /// [`FaultPlan::restart_of`].
    pub fn crash_iter(&self, worker: usize) -> Option<u64> {
        self.for_worker(worker).find_map(|f| match f {
            WorkerFault::CrashAt { at_iter } => Some(at_iter),
            _ => None,
        })
    }

    /// The `(crash_iter, rejoin_after_us)` of `worker`'s crash-restart, if
    /// the plan schedules one.
    pub fn restart_of(&self, worker: usize) -> Option<(u64, u64)> {
        self.for_worker(worker).find_map(|f| match f {
            WorkerFault::RestartAt {
                at_iter,
                rejoin_after_us,
            } => Some((at_iter, rejoin_after_us)),
            _ => None,
        })
    }

    /// The iteration at which `worker` stops computing for a while —
    /// either a permanent crash or the crash half of a restart. Barrier
    /// protocols (BSP) use this to reject plans they cannot survive.
    pub fn kills(&self, worker: usize) -> Option<u64> {
        self.crash_iter(worker)
            .or_else(|| self.restart_of(worker).map(|(at, _)| at))
    }

    /// The largest worker index the plan touches, if any (used to validate
    /// a plan against a cluster size).
    pub fn max_worker(&self) -> Option<usize> {
        self.faults.iter().map(|(w, _)| *w).max()
    }
}

/// The post-mortem verdict on one worker, reported by both worlds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkerFate {
    /// Ran to the end of training without incident.
    #[default]
    Healthy,
    /// Died permanently after completing `at_iter` iterations.
    Crashed {
        /// Completed-iteration count at death.
        at_iter: u64,
    },
    /// Froze at `at_iter` (and, in the threaded world, later recovered —
    /// a hang that outlives the run is reported as [`WorkerFate::Crashed`]
    /// by the controller's liveness verdict, not here).
    Hung {
        /// Completed-iteration count at which the hang started.
        at_iter: u64,
    },
    /// Ran as a persistent straggler from `from_iter` on.
    Slowed {
        /// Completed-iteration count at which the slowdown began.
        from_iter: u64,
    },
    /// Crashed after `at_iter` iterations and was scheduled to rejoin.
    /// `rejoined` reports whether the rejoin actually happened before the
    /// run ended (a restart scheduled past the end of training is just a
    /// crash).
    Restarted {
        /// Completed-iteration count at the crash.
        at_iter: u64,
        /// Whether the worker made it back into the cluster.
        rejoined: bool,
    },
    /// Left gracefully under a `ChurnPlan`: contributed through
    /// `at_round`, final gradient drained, then removed.
    Retired {
        /// Last global round the worker contributed to.
        at_round: u64,
    },
    /// Forcibly removed under a `ChurnPlan` as round `at_round` began;
    /// in-flight work toward that round was discarded.
    Evicted {
        /// First global round the worker was excluded from.
        at_round: u64,
    },
}

impl WorkerFate {
    /// Whether the worker was dead (permanently) at the end of the run.
    /// Planned departures ([`WorkerFate::Retired`], [`WorkerFate::Evicted`])
    /// are not deaths — see [`WorkerFate::is_departed`].
    pub fn is_dead(&self) -> bool {
        matches!(
            self,
            WorkerFate::Crashed { .. }
                | WorkerFate::Restarted {
                    rejoined: false,
                    ..
                }
        )
    }

    /// Whether the worker left the cluster under a churn plan (retired or
    /// evicted) rather than by failure.
    pub fn is_departed(&self) -> bool {
        matches!(
            self,
            WorkerFate::Retired { .. } | WorkerFate::Evicted { .. }
        )
    }
}

/// How many ready workers an eager-majority round needs before it may
/// fire, given the number of *live* members. Crashed workers shrink the
/// electorate: a majority of survivors, never less than one.
///
/// Both the simulated eager-SGD baseline and the threaded
/// `SyncMode::EagerMajority` controller call this — the threaded majority
/// loop previously hard-coded `n / 2 + 1` over all workers and therefore
/// spun forever once half the cluster died.
pub fn live_majority(live_members: usize) -> usize {
    (live_members / 2 + 1).max(1)
}

/// Whether an in-flight probe round can no longer elect an initiator
/// because every probed member is dead, and must be resampled from the
/// live set. `probed` holds member-local indices into `live`.
///
/// Shared by the simulator's `GroupState::handle_crash` and the threaded
/// controller's re-probe loop. Tolerant of degenerate inputs: an empty
/// probe set is not stalled (there is nothing to wait on), and a probed
/// index outside `live` — possible transiently while a rejoining worker is
/// re-admitted — counts as dead rather than panicking.
pub fn probe_round_stalled(probed: &[usize], live: &[bool]) -> bool {
    !probed.is_empty()
        && probed
            .iter()
            .all(|&l| live.get(l).is_none_or(|&alive| !alive))
}

/// Real-time heartbeat age (microseconds) past which the threaded
/// controller presumes a silent worker dead. Chosen ≫ any benign compute
/// interval the test/bench configurations use (tens of milliseconds), and
/// ≪ the round deadline, so crashes are detected within a few rounds.
pub const LIVENESS_TIMEOUT_US: u64 = 150_000;

/// How long (microseconds) the threaded RNA controller waits on an
/// unresponsive probed set before resampling initiator candidates from the
/// live workers (re-probe backoff).
pub const PROBE_BACKOFF_US: u64 = 2_000;

/// Hard per-round deadline (microseconds) in the threaded runtime: a
/// round that cannot assemble any contribution by the deadline is
/// completed *degraded* (no update applied) rather than blocking forever.
pub const ROUND_DEADLINE_US: u64 = 5_000_000;

/// Default ceiling on the exponential re-probe backoff (microseconds):
/// doubling stops here so a long partition cannot push the retry interval
/// past the round deadline.
pub const PROBE_BACKOFF_CAP_US: u64 = 128_000;

/// A structurally invalid timeout or cadence configuration.
///
/// Returned by [`ToleranceConfig::validate`] (and the recovery module's
/// checkpoint-cadence validation) instead of letting a zero window silently
/// declare every worker dead or spin a retry loop hot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `liveness_timeout_us == 0`: every worker would be presumed dead the
    /// instant it was probed.
    ZeroLivenessWindow,
    /// `round_deadline_us == 0`: every round would complete degraded
    /// before any gradient could arrive.
    ZeroDeadlineWindow,
    /// `probe_backoff_us == 0`: the re-probe loop would spin without
    /// pacing (and exponential doubling of zero never backs off).
    ZeroProbeBackoff,
    /// `probe_backoff_cap_us < probe_backoff_us`: a ceiling below the base
    /// makes the very first backoff interval already "over cap".
    BackoffCapBelowBase {
        /// The configured initial backoff.
        base_us: u64,
        /// The configured (smaller) ceiling.
        cap_us: u64,
    },
    /// A checkpoint cadence of zero rounds: there is no round boundary at
    /// which such a checkpoint could ever be cut.
    ZeroCheckpointCadence,
    /// A `ChurnPlan` join whose admission deadline is shorter than the
    /// liveness lease: the controller would presume the joiner dead while
    /// the snapshot stream is still legitimately in flight.
    AdmissionDeadlineBelowLease {
        /// The joining worker.
        worker: usize,
        /// The configured admission deadline.
        deadline_us: u64,
        /// The liveness lease it must cover.
        lease_us: u64,
    },
    /// A structurally impossible `ChurnPlan`: duplicate events, a leave
    /// scheduled at or before the same worker's join, an out-of-capacity
    /// identity, or a plan that drains the cluster. `worker` is
    /// `usize::MAX` for whole-plan problems.
    ChurnPlanMalformed {
        /// The offending worker (or `usize::MAX`).
        worker: usize,
        /// What is wrong, in one clause.
        why: &'static str,
    },
    /// A regroup policy that can never fire: zero check cadence or an
    /// EWMA smoothing factor outside `(0, 1]`.
    ZeroRegroupCadence,
    /// An address-book file (the `addr\nkey` pair the process-world
    /// coordinator publishes for external workers) failed to parse.
    /// `line` is 1-based; 0 means the file as a whole.
    AddrBookMalformed {
        /// The offending line (1-based; 0 for whole-file problems).
        line: usize,
        /// What is wrong, in one clause.
        why: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroLivenessWindow => {
                write!(f, "liveness timeout must be positive")
            }
            ConfigError::ZeroDeadlineWindow => {
                write!(f, "round deadline must be positive")
            }
            ConfigError::ZeroProbeBackoff => {
                write!(f, "probe backoff must be positive")
            }
            ConfigError::BackoffCapBelowBase { base_us, cap_us } => {
                write!(
                    f,
                    "probe backoff cap ({cap_us} us) is below the base ({base_us} us)"
                )
            }
            ConfigError::ZeroCheckpointCadence => {
                write!(f, "checkpoint cadence must be at least one round")
            }
            ConfigError::AdmissionDeadlineBelowLease {
                worker,
                deadline_us,
                lease_us,
            } => {
                write!(
                    f,
                    "worker {worker}: admission deadline ({deadline_us} us) is \
                     below the liveness lease ({lease_us} us)"
                )
            }
            ConfigError::ChurnPlanMalformed { worker, why } => {
                if *worker == usize::MAX {
                    write!(f, "malformed churn plan: {why}")
                } else {
                    write!(f, "malformed churn plan for worker {worker}: {why}")
                }
            }
            ConfigError::ZeroRegroupCadence => {
                write!(
                    f,
                    "regroup policy needs a positive check cadence and an EWMA alpha in (0, 1]"
                )
            }
            ConfigError::AddrBookMalformed { line, why } => {
                if *line == 0 {
                    write!(f, "malformed address book: {why}")
                } else {
                    write!(f, "malformed address book at line {line}: {why}")
                }
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The failure-detection and retry timeouts of the threaded controller,
/// previously hard-coded as the `*_US` constants (which remain as the
/// [`Default`] values). Fault tests can tighten these instead of paying
/// real 150 ms liveness waits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToleranceConfig {
    /// Heartbeat age past which a silent worker is presumed dead. Also the
    /// controller lease: a standby takes over when the active controller
    /// has not heartbeat within this window.
    pub liveness_timeout_us: u64,
    /// Initial re-probe backoff; doubles per retry within a round.
    pub probe_backoff_us: u64,
    /// Ceiling for the exponential re-probe backoff.
    pub probe_backoff_cap_us: u64,
    /// Hard per-round deadline before the round completes degraded.
    pub round_deadline_us: u64,
}

impl Default for ToleranceConfig {
    fn default() -> Self {
        ToleranceConfig {
            liveness_timeout_us: LIVENESS_TIMEOUT_US,
            probe_backoff_us: PROBE_BACKOFF_US,
            probe_backoff_cap_us: PROBE_BACKOFF_CAP_US,
            round_deadline_us: ROUND_DEADLINE_US,
        }
    }
}

impl ToleranceConfig {
    /// Tight timeouts for fault tests: sub-10 ms failure detection so a
    /// crash test does not sit through 150 ms liveness waits per victim.
    /// Still ≫ the 1–2 ms compute intervals the quick configs use.
    pub fn tight() -> Self {
        ToleranceConfig {
            liveness_timeout_us: 8_000,
            probe_backoff_us: 500,
            probe_backoff_cap_us: 32_000,
            round_deadline_us: 1_000_000,
        }
    }

    /// Builds a validated configuration, rejecting zero windows and a
    /// backoff ceiling below the base with a typed [`ConfigError`].
    ///
    /// # Errors
    ///
    /// See the [`ConfigError`] variants for each rejected shape.
    pub fn new(
        liveness_timeout_us: u64,
        probe_backoff_us: u64,
        probe_backoff_cap_us: u64,
        round_deadline_us: u64,
    ) -> Result<Self, ConfigError> {
        let config = ToleranceConfig {
            liveness_timeout_us,
            probe_backoff_us,
            probe_backoff_cap_us,
            round_deadline_us,
        };
        config.validate()?;
        Ok(config)
    }

    /// Checks the invariants [`ToleranceConfig::new`] enforces. Callers
    /// that build the struct literally (or deserialize it) should validate
    /// before use; `run_threaded` does.
    ///
    /// # Errors
    ///
    /// See the [`ConfigError`] variants for each rejected shape.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.liveness_timeout_us == 0 {
            return Err(ConfigError::ZeroLivenessWindow);
        }
        if self.round_deadline_us == 0 {
            return Err(ConfigError::ZeroDeadlineWindow);
        }
        if self.probe_backoff_us == 0 {
            return Err(ConfigError::ZeroProbeBackoff);
        }
        if self.probe_backoff_cap_us < self.probe_backoff_us {
            return Err(ConfigError::BackoffCapBelowBase {
                base_us: self.probe_backoff_us,
                cap_us: self.probe_backoff_cap_us,
            });
        }
        Ok(())
    }
}

/// A deterministic *network* fault script, shared by both worlds the same
/// way [`FaultPlan`] is: per-link message-drop probabilities, link flaps
/// (timed down-windows), and timed partitions that split the cluster into
/// components.
///
/// Node numbering follows the simulator convention: workers are `0..n`,
/// node `n` is the controller, node `n + 1` the parameter server/master.
/// All windows are in microseconds — virtual time in the DES, elapsed real
/// time in the threaded runtime — so one plan expresses the same chaos in
/// both worlds.
///
/// The plan is pure data; [`NetFaultPlan::compile`] lowers it to the
/// [`rna_simnet::NetFaults`] mechanism with the controller as a *bridge*
/// node that both sides of a partition can still reach. The paper's
/// scheduler (§3.1) is stateless and replicable per side, so modeling it
/// as reachable keeps an isolated group's internal RNA coordination alive
/// while its data paths (peer links, PS link) are genuinely severed.
///
/// # Examples
///
/// ```
/// use rna_core::fault::NetFaultPlan;
///
/// let plan = NetFaultPlan::none()
///     .with_seed(7)
///     .drop_link(4, 0, 0.2)           // controller↔worker-0 loses 20%
///     .flap(0, 1, 10_000, 20_000)     // link down for 10 ms
///     .partition(vec![2, 3], 5_000, 50_000);
/// plan.validate(4);
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetFaultPlan {
    seed: u64,
    drops: Vec<(usize, usize, f64)>,
    flaps: Vec<(usize, usize, u64, u64)>,
    partitions: Vec<(Vec<usize>, u64, u64)>,
    delays: Vec<(usize, usize, u64)>,
    corrupts: Vec<(usize, usize, f64)>,
}

impl NetFaultPlan {
    /// The empty plan: a perfectly reliable fabric.
    pub fn none() -> Self {
        NetFaultPlan::default()
    }

    /// Sets the seed for the per-edge drop streams.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Each message on the `a`↔`b` link is dropped with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn drop_link(mut self, a: usize, b: usize, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability {p} not in [0, 1]"
        );
        self.drops.push((a, b, p));
        self
    }

    /// The `a`↔`b` link is down for the window `[from_us, until_us)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn flap(mut self, a: usize, b: usize, from_us: u64, until_us: u64) -> Self {
        assert!(from_us < until_us, "empty flap window");
        self.flaps.push((a, b, from_us, until_us));
        self
    }

    /// Partitions the cluster for `[from_us, until_us)`: every link between
    /// a worker in `component` and a node outside it is severed (the
    /// controller excepted — see the type docs).
    ///
    /// # Panics
    ///
    /// Panics if `component` is empty or the window is empty.
    pub fn partition(mut self, component: Vec<usize>, from_us: u64, until_us: u64) -> Self {
        assert!(!component.is_empty(), "empty partition component");
        assert!(from_us < until_us, "empty partition window");
        self.partitions.push((component, from_us, until_us));
        self
    }

    /// Every message on the `a`↔`b` link is delayed by `extra_us` before
    /// delivery. Only the process world's fault proxy realizes delays (on
    /// the physical hop); the shim-based worlds ignore them — their link
    /// model is binary (delivered or not), and an added delay would desync
    /// the DES clock from the plan the other worlds execute.
    ///
    /// # Panics
    ///
    /// Panics if `extra_us` is zero (an empty delay is not a fault).
    pub fn delay_link(mut self, a: usize, b: usize, extra_us: u64) -> Self {
        assert!(extra_us > 0, "zero-delay link fault");
        self.delays.push((a, b, extra_us));
        self
    }

    /// Each message on the `a`↔`b` link is *corrupted* with probability
    /// `p`. The shim-based worlds lower corruption to a drop (a mangled
    /// message is never applied); the process world's fault proxy flips
    /// real bytes or truncates the frame on the physical hop, so the
    /// receiver's typed decode errors — not the plan — discard it.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn corrupt_link(mut self, a: usize, b: usize, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "corruption probability {p} not in [0, 1]"
        );
        self.corrupts.push((a, b, p));
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.drops.is_empty()
            && self.flaps.is_empty()
            && self.partitions.is_empty()
            && self.delays.is_empty()
            && self.corrupts.is_empty()
    }

    /// The seed the drop streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-link drop entries `(a, b, p)`.
    pub fn drops(&self) -> &[(usize, usize, f64)] {
        &self.drops
    }

    /// The link down-windows `(a, b, from_us, until_us)`.
    pub fn flaps(&self) -> &[(usize, usize, u64, u64)] {
        &self.flaps
    }

    /// The timed partitions `(component, from_us, until_us)`.
    pub fn partitions(&self) -> &[(Vec<usize>, u64, u64)] {
        &self.partitions
    }

    /// The per-link delay entries `(a, b, extra_us)`.
    pub fn delays(&self) -> &[(usize, usize, u64)] {
        &self.delays
    }

    /// The per-link corruption entries `(a, b, p)`.
    pub fn corrupts(&self) -> &[(usize, usize, f64)] {
        &self.corrupts
    }

    /// Splits the plan for the process world's fault proxy into
    /// `(physical, virtual)` halves. Entries naming the controller link
    /// (`a` or `b` equals `controller`) are *physical*: the proxy realizes
    /// them on the actual worker↔coordinator socket. Everything else —
    /// partitions (which model peer↔peer cuts the flat runtime has no
    /// socket for) and faults on links not touching the controller — stays
    /// *virtual* and is interpreted by the controller-side shim, exactly
    /// as without a proxy. Both halves keep the seed, so a split plan
    /// rolls the same per-edge streams as the unsplit one.
    pub fn split_physical(&self, controller: usize) -> (NetFaultPlan, NetFaultPlan) {
        let touches = |a: usize, b: usize| a == controller || b == controller;
        let mut physical = NetFaultPlan::none().with_seed(self.seed);
        let mut virt = NetFaultPlan::none().with_seed(self.seed);
        for &(a, b, p) in &self.drops {
            let side = if touches(a, b) {
                &mut physical
            } else {
                &mut virt
            };
            side.drops.push((a, b, p));
        }
        for &(a, b, from, until) in &self.flaps {
            let side = if touches(a, b) {
                &mut physical
            } else {
                &mut virt
            };
            side.flaps.push((a, b, from, until));
        }
        for &(a, b, us) in &self.delays {
            let side = if touches(a, b) {
                &mut physical
            } else {
                &mut virt
            };
            side.delays.push((a, b, us));
        }
        for &(a, b, p) in &self.corrupts {
            let side = if touches(a, b) {
                &mut physical
            } else {
                &mut virt
            };
            side.corrupts.push((a, b, p));
        }
        virt.partitions = self.partitions.clone();
        (physical, virt)
    }

    /// Checks every node index against a cluster of `num_workers` workers:
    /// partition components may name only workers (`< num_workers`); drop
    /// and flap endpoints may also name the controller (`num_workers`) and
    /// the PS/master node (`num_workers + 1`).
    ///
    /// # Panics
    ///
    /// Panics on the first out-of-range index.
    pub fn validate(&self, num_workers: usize) {
        let max_node = num_workers + 1;
        for &(a, b, _) in &self.drops {
            assert!(
                a <= max_node && b <= max_node,
                "drop endpoint out of range: ({a}, {b}) with {num_workers} workers"
            );
        }
        for &(a, b, ..) in &self.flaps {
            assert!(
                a <= max_node && b <= max_node,
                "flap endpoint out of range: ({a}, {b}) with {num_workers} workers"
            );
        }
        for &(a, b, _) in &self.delays {
            assert!(
                a <= max_node && b <= max_node,
                "delay endpoint out of range: ({a}, {b}) with {num_workers} workers"
            );
        }
        for &(a, b, _) in &self.corrupts {
            assert!(
                a <= max_node && b <= max_node,
                "corrupt endpoint out of range: ({a}, {b}) with {num_workers} workers"
            );
        }
        for (component, ..) in &self.partitions {
            for &w in component {
                assert!(
                    w < num_workers,
                    "partition member {w} out of range for {num_workers} workers"
                );
            }
        }
    }

    /// Lowers the plan to the [`rna_simnet::NetFaults`] mechanism for a
    /// cluster whose controller is node `controller` (bridged across
    /// partitions; see the type docs).
    pub fn compile(&self, controller: usize) -> NetFaults {
        let at = |us: u64| SimTime::ZERO + SimDuration::from_micros(us);
        let mut f = NetFaults::new(self.seed);
        for &(a, b, p) in &self.drops {
            f = f.with_drop(a, b, p);
        }
        // The binary link model has no corruption: a mangled message is a
        // message the receiver never applies, so corruption lowers to a
        // drop with the same probability. Delays have no lowering at all
        // (see `delay_link`) and are realized only by the fault proxy.
        for &(a, b, p) in &self.corrupts {
            f = f.with_drop(a, b, p);
        }
        for &(a, b, from, until) in &self.flaps {
            f = f.with_down(a, b, at(from), at(until));
        }
        for (component, from, until) in &self.partitions {
            f = f.with_cut(component.clone(), vec![controller], at(*from), at(*until));
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builders_accumulate() {
        let plan = FaultPlan::none().crash(0, 3).hang(1, 4, 500).slow(2, 0, 9);
        assert_eq!(plan.faults().len(), 3);
        assert_eq!(plan.crash_iter(0), Some(3));
        assert_eq!(plan.crash_iter(1), None);
        assert_eq!(plan.max_worker(), Some(2));
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn trigger_iters() {
        assert_eq!(WorkerFault::CrashAt { at_iter: 7 }.trigger_iter(), 7);
        assert_eq!(
            WorkerFault::HangAt {
                at_iter: 2,
                for_us: 1
            }
            .trigger_iter(),
            2
        );
        assert_eq!(
            WorkerFault::SlowFrom {
                from_iter: 4,
                extra_us: 1
            }
            .trigger_iter(),
            4
        );
        assert_eq!(
            WorkerFault::GrayFrom {
                from_iter: 6,
                step_us: 2,
                cap_us: 10
            }
            .trigger_iter(),
            6
        );
    }

    #[test]
    fn gray_ramp_grows_then_caps() {
        let gray = WorkerFault::GrayFrom {
            from_iter: 10,
            step_us: 300,
            cap_us: 1_000,
        };
        assert_eq!(gray.slowdown_at(9), 0);
        assert_eq!(gray.slowdown_at(10), 300);
        assert_eq!(gray.slowdown_at(11), 600);
        assert_eq!(gray.slowdown_at(12), 900);
        assert_eq!(gray.slowdown_at(13), 1_000, "capped");
        assert_eq!(gray.slowdown_at(10_000), 1_000);
        // Constant straggler through the same lens.
        let slow = WorkerFault::SlowFrom {
            from_iter: 5,
            extra_us: 700,
        };
        assert_eq!(slow.slowdown_at(4), 0);
        assert_eq!(slow.slowdown_at(5), 700);
        assert_eq!(slow.slowdown_at(500), 700);
        // Non-slowdown faults never slow anything.
        assert_eq!(WorkerFault::CrashAt { at_iter: 3 }.slowdown_at(9), 0);
        // The builder registers it like any other fault.
        let plan = FaultPlan::none().gray(2, 10, 300, 1_000);
        assert!(matches!(
            plan.for_worker(2).next(),
            Some(WorkerFault::GrayFrom { .. })
        ));
        assert_eq!(plan.max_worker(), Some(2));
    }

    #[test]
    fn majority_shrinks_with_deaths() {
        assert_eq!(live_majority(4), 3);
        assert_eq!(live_majority(3), 2);
        assert_eq!(live_majority(2), 2);
        assert_eq!(live_majority(1), 1);
        // Even an empty electorate demands one contributor, so a fully
        // dead cluster can never fire a round by accident.
        assert_eq!(live_majority(0), 1);
    }

    #[test]
    fn stalled_probe_rounds() {
        let live = [true, false, false, true];
        assert!(probe_round_stalled(&[1, 2], &live));
        assert!(!probe_round_stalled(&[1, 3], &live));
        assert!(!probe_round_stalled(&[], &live));
    }

    #[test]
    fn fates_report_death() {
        assert!(WorkerFate::Crashed { at_iter: 0 }.is_dead());
        assert!(!WorkerFate::Healthy.is_dead());
        assert!(!WorkerFate::Hung { at_iter: 1 }.is_dead());
        assert!(!WorkerFate::Slowed { from_iter: 1 }.is_dead());
        assert!(WorkerFate::Restarted {
            at_iter: 3,
            rejoined: false
        }
        .is_dead());
        assert!(!WorkerFate::Restarted {
            at_iter: 3,
            rejoined: true
        }
        .is_dead());
        // Planned departures are not deaths, but they are departures.
        assert!(!WorkerFate::Retired { at_round: 5 }.is_dead());
        assert!(!WorkerFate::Evicted { at_round: 5 }.is_dead());
        assert!(WorkerFate::Retired { at_round: 5 }.is_departed());
        assert!(WorkerFate::Evicted { at_round: 5 }.is_departed());
        assert!(!WorkerFate::Healthy.is_departed());
        assert!(!WorkerFate::Crashed { at_iter: 0 }.is_departed());
    }

    #[test]
    fn restart_is_a_kill_but_not_a_crash() {
        let plan = FaultPlan::none().restart(2, 5, 40_000);
        assert_eq!(plan.crash_iter(2), None, "restarts are not permanent");
        assert_eq!(plan.restart_of(2), Some((5, 40_000)));
        assert_eq!(plan.kills(2), Some(5));
        assert_eq!(plan.restart_of(0), None);
        assert_eq!(
            WorkerFault::RestartAt {
                at_iter: 5,
                rejoin_after_us: 1
            }
            .trigger_iter(),
            5
        );

        let crash = FaultPlan::none().crash(1, 3);
        assert_eq!(crash.kills(1), Some(3));
        assert_eq!(crash.restart_of(1), None);
    }

    #[test]
    fn stalled_probe_tolerates_degenerate_inputs() {
        // Out-of-range probed indices count as dead, never panic.
        assert!(probe_round_stalled(&[7], &[false, false]));
        assert!(!probe_round_stalled(&[7, 0], &[true, false]));
        // Empty live view: anything probed is stalled.
        assert!(probe_round_stalled(&[0], &[]));
        // Single live member.
        assert!(!probe_round_stalled(&[0], &[true]));
    }

    #[test]
    fn tolerance_default_matches_constants() {
        let t = ToleranceConfig::default();
        assert_eq!(t.liveness_timeout_us, LIVENESS_TIMEOUT_US);
        assert_eq!(t.probe_backoff_us, PROBE_BACKOFF_US);
        assert_eq!(t.probe_backoff_cap_us, PROBE_BACKOFF_CAP_US);
        assert_eq!(t.round_deadline_us, ROUND_DEADLINE_US);
        let tight = ToleranceConfig::tight();
        assert!(tight.liveness_timeout_us < t.liveness_timeout_us);
        assert!(tight.round_deadline_us < t.round_deadline_us);
        t.validate().unwrap();
        tight.validate().unwrap();
    }

    #[test]
    fn tolerance_validation_rejects_zero_windows() {
        assert_eq!(
            ToleranceConfig::new(0, 1, 1, 1),
            Err(ConfigError::ZeroLivenessWindow)
        );
        assert_eq!(
            ToleranceConfig::new(1, 1, 1, 0),
            Err(ConfigError::ZeroDeadlineWindow)
        );
        assert_eq!(
            ToleranceConfig::new(1, 0, 1, 1),
            Err(ConfigError::ZeroProbeBackoff)
        );
        assert_eq!(
            ToleranceConfig::new(1, 500, 499, 1),
            Err(ConfigError::BackoffCapBelowBase {
                base_us: 500,
                cap_us: 499
            })
        );
        assert!(ToleranceConfig::new(1, 500, 500, 1).is_ok());
        // Errors render as readable messages, not Debug soup.
        let msg = ConfigError::BackoffCapBelowBase {
            base_us: 500,
            cap_us: 499,
        }
        .to_string();
        assert!(msg.contains("below the base"), "{msg}");
    }

    #[test]
    fn control_plane_faults_accumulate_and_sort() {
        let plan = FaultPlan::none()
            .crash_controller(9)
            .crash_ps_shard(1, 4)
            .crash_controller(3);
        assert_eq!(plan.controller_crashes(), &[3, 9]);
        assert_eq!(plan.ps_shard_crashes(), &[(1, 4)]);
        assert!(plan.has_control_faults());
        assert!(!plan.is_empty());
        // Control-plane targets are not workers: cluster-size validation
        // keys off worker faults only.
        assert_eq!(plan.max_worker(), None);
        assert!(!FaultPlan::none().has_control_faults());
    }

    #[test]
    fn net_plan_builders_and_validation() {
        let plan = NetFaultPlan::none()
            .with_seed(3)
            .drop_link(4, 0, 0.25)
            .flap(1, 2, 100, 200)
            .partition(vec![2, 3], 0, 1_000);
        assert!(!plan.is_empty());
        assert_eq!(plan.seed(), 3);
        plan.validate(4); // controller 4, PS 5 are legal drop endpoints
        assert!(NetFaultPlan::none().is_empty());
    }

    #[test]
    fn net_plan_compiles_with_controller_bridge() {
        let at = |us: u64| rna_simnet::SimTime::ZERO + SimDuration::from_micros(us);
        let f = NetFaultPlan::none()
            .partition(vec![2, 3], 10, 20)
            .compile(4);
        assert!(!f.link_up(2, 0, at(15)), "island↔outside severed");
        assert!(f.link_up(2, 4, at(15)), "controller bridges the cut");
        assert!(f.link_up(2, 3, at(15)));
        assert!(!f.link_up(3, 5, at(15)), "PS is on the majority side");
        assert!(f.link_up(2, 0, at(25)), "heals after the window");
    }

    #[test]
    #[should_panic(expected = "partition member 9 out of range")]
    fn net_plan_rejects_out_of_range_partition_member() {
        NetFaultPlan::none().partition(vec![9], 0, 10).validate(4);
    }

    #[test]
    #[should_panic(expected = "drop endpoint out of range")]
    fn net_plan_rejects_out_of_range_drop_endpoint() {
        NetFaultPlan::none().drop_link(0, 6, 0.5).validate(4);
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn net_plan_rejects_bad_probability() {
        let _ = NetFaultPlan::none().drop_link(0, 1, -0.1);
    }

    #[test]
    #[should_panic(expected = "empty flap window")]
    fn net_plan_rejects_empty_flap() {
        let _ = NetFaultPlan::none().flap(0, 1, 50, 50);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Worker-fault builders accept any mix of duplicate workers
            /// and fault kinds without panicking, and the accessors stay
            /// consistent with what was inserted.
            #[test]
            fn fault_plan_builders_total(
                ops in proptest::collection::vec(
                    (0usize..8, 0u64..50, 1u64..10_000, 0u8..5), 0..24)
            ) {
                let mut plan = FaultPlan::none();
                for &(w, iter, us, kind) in &ops {
                    plan = match kind {
                        0 => plan.crash(w, iter),
                        1 => plan.hang(w, iter, us),
                        2 => plan.slow(w, iter, us),
                        3 => plan.gray(w, iter, us, us * 4),
                        _ => plan.restart(w, iter, us),
                    };
                }
                prop_assert_eq!(plan.faults().len(), ops.len());
                prop_assert_eq!(plan.is_empty(), ops.is_empty());
                prop_assert_eq!(
                    plan.max_worker(),
                    ops.iter().map(|&(w, ..)| w).max()
                );
                for w in 0..8 {
                    let count = plan.for_worker(w).count();
                    prop_assert_eq!(
                        count,
                        ops.iter().filter(|&&(ow, ..)| ow == w).count()
                    );
                    if let Some(k) = plan.kills(w) {
                        prop_assert!(plan
                            .for_worker(w)
                            .any(|f| f.trigger_iter() == k));
                    }
                }
            }

            /// Net-fault builders accept duplicate links and overlapping
            /// windows; compiled link state is down inside any window that
            /// covers `t` and up outside all of them.
            #[test]
            fn net_plan_overlapping_windows(
                windows in proptest::collection::vec(
                    (0u64..1_000, 1u64..1_000), 1..6),
                t in 0u64..2_500
            ) {
                let mut plan = NetFaultPlan::none();
                for &(from, len) in &windows {
                    plan = plan.flap(0, 1, from, from + len);
                }
                plan.validate(2);
                let f = plan.compile(2);
                let now = rna_simnet::SimTime::ZERO + SimDuration::from_micros(t);
                let covered = windows
                    .iter()
                    .any(|&(from, len)| from <= t && t < from + len);
                prop_assert_eq!(f.link_up(0, 1, now), !covered);
            }

            /// In-range plans always validate; the check is total.
            #[test]
            fn net_plan_validate_accepts_in_range(
                n in 2usize..12,
                links in proptest::collection::vec((0usize..14, 0usize..14, 0f64..1.0), 0..8),
            ) {
                let mut plan = NetFaultPlan::none();
                for &(a, b, p) in &links {
                    plan = plan.drop_link(a.min(n + 1), b.min(n + 1), p);
                }
                plan.validate(n);
            }

            /// `live_majority` is always in `[1, live]`-ish bounds and
            /// monotone.
            #[test]
            fn live_majority_bounds(live in 0usize..1_000) {
                let m = live_majority(live);
                prop_assert!(m >= 1);
                prop_assert!(m <= live.max(1));
                prop_assert!(live_majority(live + 1) >= m);
            }

            /// `probe_round_stalled` never panics, for any index soup.
            #[test]
            fn probe_round_stalled_total(
                probed in proptest::collection::vec(0usize..32, 0..8),
                live_bits in proptest::collection::vec(0u8..2, 0..16),
            ) {
                let live: Vec<bool> = live_bits.iter().map(|&b| b == 1).collect();
                let stalled = probe_round_stalled(&probed, &live);
                if probed.is_empty() {
                    prop_assert!(!stalled);
                }
                if probed.iter().any(|&l| live.get(l) == Some(&true)) {
                    prop_assert!(!stalled);
                }
            }
        }
    }
}
