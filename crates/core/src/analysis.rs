//! The §5 convergence analysis, as executable formulas.
//!
//! The paper bounds RNA's convergence under three standard assumptions
//! (unbiased gradients, bounded variance σ², L-Lipschitz gradients) plus
//! bounded delay `max τ_ij ≤ η`. This module implements the quantities of
//! Theorems 5.1 and 5.2 so experiments can check their configurations
//! against the theory and the ablation benches can sweep them:
//!
//! * [`constant_step_length`] — the constant γ of Eq. (4),
//! * [`step_condition_holds`] — the step-length condition of Eq. (1),
//! * [`convergence_rate_bound`] — the `4·√((f(x₁)−f*)·L·σ²/(B·K))` rate of
//!   Eq. (9),
//! * [`min_iterations_for_delay`] — the `K ≥ 4BL(f₁−f*)/σ² · (η+1)²`
//!   threshold of Eq. (3) beyond which the rate is independent of the
//!   staleness bound η.

/// Problem constants for the analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProblemConstants {
    /// Initial suboptimality `f(x₁) − f(x*)`.
    pub initial_gap: f64,
    /// Lipschitz constant of the gradient.
    pub lipschitz: f64,
    /// Gradient-variance bound σ².
    pub sigma_sq: f64,
    /// Mini-batch/aggregation factor 𝔹 (the number of gradients averaged
    /// per update).
    pub batch_factor: f64,
}

impl ProblemConstants {
    /// Creates the constant set.
    ///
    /// # Panics
    ///
    /// Panics if any constant is non-positive or non-finite.
    pub fn new(initial_gap: f64, lipschitz: f64, sigma_sq: f64, batch_factor: f64) -> Self {
        for (name, v) in [
            ("initial gap", initial_gap),
            ("Lipschitz constant", lipschitz),
            ("variance bound", sigma_sq),
            ("batch factor", batch_factor),
        ] {
            assert!(v.is_finite() && v > 0.0, "{name} must be positive");
        }
        ProblemConstants {
            initial_gap,
            lipschitz,
            sigma_sq,
            batch_factor,
        }
    }
}

/// The constant step length of Eq. (4):
/// `γ = sqrt((f(x₁) − f*) / (B·L·K·σ²))`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn constant_step_length(c: &ProblemConstants, k: u64) -> f64 {
    assert!(k > 0, "need at least one iteration");
    (c.initial_gap / (c.batch_factor * c.lipschitz * k as f64 * c.sigma_sq)).sqrt()
}

/// Checks the Theorem 5.1 step condition (Eq. 1) for a *constant* step γ
/// and delay bound η:
/// `γ²(L/2 + L²·B·η²·γ) − γ/(2B) ≤ 0`.
pub fn step_condition_holds(c: &ProblemConstants, gamma: f64, eta: u64) -> bool {
    let l = c.lipschitz;
    let b = c.batch_factor;
    let eta = eta as f64;
    gamma * gamma * (l / 2.0 + l * l * b * eta * eta * gamma) - gamma / (2.0 * b) <= 0.0
}

/// The asymptotic convergence rate of Eq. (9):
/// `(1/K) Σ E‖∇f(x_k)‖² ≤ 4·sqrt((f(x₁) − f*)·L·σ² / (B·K))`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn convergence_rate_bound(c: &ProblemConstants, k: u64) -> f64 {
    assert!(k > 0, "need at least one iteration");
    4.0 * (c.initial_gap * c.lipschitz * c.sigma_sq / (c.batch_factor * k as f64)).sqrt()
}

/// The minimum iteration count of Eq. (3) above which the delay bound η no
/// longer affects the rate:
/// `K ≥ 4·B·L·(f(x₁) − f*)/σ² · (η + 1)²`.
pub fn min_iterations_for_delay(c: &ProblemConstants, eta: u64) -> u64 {
    let eta1 = (eta + 1) as f64;
    (4.0 * c.batch_factor * c.lipschitz * c.initial_gap / c.sigma_sq * eta1 * eta1).ceil() as u64
}

/// The largest delay bound η tolerated by a budget of `k` iterations
/// (inverse of [`min_iterations_for_delay`]); `None` when even η = 0 does
/// not fit.
pub fn max_tolerable_delay(c: &ProblemConstants, k: u64) -> Option<u64> {
    let base = 4.0 * c.batch_factor * c.lipschitz * c.initial_gap / c.sigma_sq;
    let eta1 = (k as f64 / base).sqrt();
    if eta1 < 1.0 {
        None
    } else {
        Some((eta1 - 1.0).floor() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consts() -> ProblemConstants {
        ProblemConstants::new(2.0, 1.0, 0.5, 8.0)
    }

    #[test]
    fn rate_decays_as_inverse_sqrt_k() {
        let c = consts();
        let r1 = convergence_rate_bound(&c, 100);
        let r4 = convergence_rate_bound(&c, 400);
        assert!((r1 / r4 - 2.0).abs() < 1e-9, "{} vs {}", r1, r4);
    }

    #[test]
    fn rate_improves_with_batch_factor() {
        // The O(1/√(BK)) form: doubling 𝔹 at fixed K improves the bound —
        // the linear-speedup property decentralized SGD inherits.
        let a = ProblemConstants::new(2.0, 1.0, 0.5, 4.0);
        let b = ProblemConstants::new(2.0, 1.0, 0.5, 16.0);
        assert!(convergence_rate_bound(&b, 100) < convergence_rate_bound(&a, 100));
    }

    #[test]
    fn constant_step_shrinks_with_k() {
        let c = consts();
        assert!(constant_step_length(&c, 10_000) < constant_step_length(&c, 100));
    }

    #[test]
    fn prescribed_step_satisfies_condition_when_k_large_enough() {
        let c = consts();
        for eta in [0u64, 1, 2, 4, 8] {
            let k = min_iterations_for_delay(&c, eta);
            let gamma = constant_step_length(&c, k);
            assert!(
                step_condition_holds(&c, gamma, eta),
                "eta {eta}, k {k}, gamma {gamma}"
            );
        }
    }

    #[test]
    fn condition_fails_for_oversized_steps() {
        let c = consts();
        assert!(!step_condition_holds(&c, 10.0, 4));
    }

    #[test]
    fn min_iterations_grows_quadratically_in_delay() {
        let c = consts();
        let k0 = min_iterations_for_delay(&c, 0) as f64;
        let k3 = min_iterations_for_delay(&c, 3) as f64;
        // (3+1)²/(0+1)² = 16.
        assert!((k3 / k0 - 16.0).abs() < 0.1, "{k0} vs {k3}");
    }

    #[test]
    fn max_delay_inverts_min_iterations() {
        let c = consts();
        for eta in [0u64, 1, 3, 7] {
            let k = min_iterations_for_delay(&c, eta);
            let back = max_tolerable_delay(&c, k).unwrap();
            assert!(back >= eta, "eta {eta} → k {k} → {back}");
        }
        assert_eq!(max_tolerable_delay(&c, 1), None);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_constants() {
        ProblemConstants::new(0.0, 1.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        convergence_rate_bound(&consts(), 0);
    }
}
