//! The discrete-event protocol harness.
//!
//! [`Engine`] owns the *training state* — one model replica, optimizer, and
//! seeded batch stream per worker, plus the virtual clock, network model,
//! and span accounting — and delegates all *synchronization policy* to a
//! [`Protocol`] implementation through [`Ctx`]. The same engine therefore
//! runs RNA, Horovod-style BSP, AD-PSGD, eager-SGD, and SGP, which is what
//! makes the paper's comparisons apples-to-apples: identical gradients,
//! identical timing models, different synchronization.
//!
//! ## Event model
//!
//! Two event kinds exist: `ComputeDone` (a worker finished an iteration's
//! forward/backward pass) and `Message` (a protocol-defined payload arrives
//! at a node). Gradients are computed *numerically* when an iteration
//! starts, from the worker's parameters at that instant — so a worker whose
//! parameters were updated mid-iteration trains on stale parameters, which
//! is precisely the cross-iteration semantics of §3.3/Figure 4.
//!
//! Node ids `0..n` are workers; [`Ctx::controller_id`] (`n`) is the central
//! scheduler on the root node and [`Ctx::ps_id`] (`n + 1`) the parameter
//! server.

use rna_collectives::CollectiveCost;
use rna_simnet::trace::{SpanKind, SpanTracker};
use rna_simnet::{EventQueue, LinkModel, NetworkModel, SimDuration, SimRng, SimTime};
use rna_tensor::{Tensor, TensorPool};
use rna_training::model::{ElmanRnn, LinearRegression, Mlp, SoftmaxClassifier};
use rna_training::{BatchSampler, Dataset, EarlyStopping, History, LrSchedule, Model, Sgd};
use rna_workload::trace::WorkloadTrace;
use rna_workload::{HeterogeneityModel, ModelProfile};

use crate::fault::{FaultPlan, NetFaultPlan, ToleranceConfig, WorkerFate, WorkerFault};
use crate::membership::ChurnPlan;
use crate::recovery::{self, CheckpointStore, RecoveryConfig, RecoveryError};
use crate::stats::{RunResult, StopReason};
use rna_tensor::wire::{self, Reader};

/// The learnable task a run optimizes.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskKind {
    /// Gaussian-blob classification; `hidden: None` selects the convex
    /// softmax classifier, `Some(h)` a one-hidden-layer MLP.
    Classification {
        /// Feature dimension.
        dim: usize,
        /// Number of classes.
        classes: usize,
        /// Hidden width (None = linear softmax).
        hidden: Option<usize>,
        /// Corpus size.
        samples: usize,
        /// Cluster spread (difficulty).
        spread: f32,
    },
    /// Variable-length sequence classification on an Elman RNN.
    Sequence {
        /// Per-step input dimension.
        input_dim: usize,
        /// Number of classes.
        classes: usize,
        /// RNN hidden width.
        hidden: usize,
        /// Corpus size.
        samples: usize,
        /// Observation noise.
        noise: f32,
        /// Minimum sequence length.
        min_len: usize,
        /// Maximum sequence length.
        max_len: usize,
    },
    /// Noisy linear regression (used by convergence sanity tests).
    Regression {
        /// Feature dimension.
        dim: usize,
        /// Corpus size.
        samples: usize,
        /// Label noise.
        noise: f32,
    },
}

impl TaskKind {
    fn build(&self, rng: &mut SimRng) -> (Dataset, Dataset, Box<dyn Model>) {
        match *self {
            TaskKind::Classification {
                dim,
                classes,
                hidden,
                samples,
                spread,
            } => {
                let ds = Dataset::blobs(samples, dim, classes, spread, rng);
                let (train, val) = ds.split(0.2);
                let model: Box<dyn Model> = match hidden {
                    Some(h) => Box::new(Mlp::new(dim, h, classes, rng)),
                    None => Box::new(SoftmaxClassifier::new(dim, classes, rng)),
                };
                (train, val, model)
            }
            TaskKind::Sequence {
                input_dim,
                classes,
                hidden,
                samples,
                noise,
                min_len,
                max_len,
            } => {
                let lengths: Vec<usize> = (0..samples)
                    .map(|_| rng.uniform_usize(min_len..max_len + 1))
                    .collect();
                let ds = Dataset::sequences(&lengths, input_dim, classes, noise, rng);
                let (train, val) = ds.split(0.2);
                let model = Box::new(ElmanRnn::new(input_dim, hidden, classes, rng));
                (train, val, model)
            }
            TaskKind::Regression {
                dim,
                samples,
                noise,
            } => {
                let ds = Dataset::regression(samples, dim, noise, rng);
                let (train, val) = ds.split(0.2);
                (train, val, Box::new(LinearRegression::new(dim)))
            }
        }
    }
}

/// Full specification of one training run.
#[derive(Debug, Clone)]
pub struct TrainSpec {
    /// Number of workers.
    pub num_workers: usize,
    /// Workload profile (compute model + communication volume).
    pub profile: ModelProfile,
    /// Injected heterogeneity.
    pub hetero: HeterogeneityModel,
    /// Network link model.
    pub link: LinkModel,
    /// The learnable task.
    pub task: TaskKind,
    /// Master seed; all randomness forks from it.
    pub seed: u64,
    /// Per-worker mini-batch size.
    pub batch_size: usize,
    /// Learning-rate schedule (indexed by global round).
    pub lr: LrSchedule,
    /// SGD momentum.
    pub momentum: f32,
    /// SGD weight decay.
    pub weight_decay: f32,
    /// Evaluate every this many global rounds — or, when
    /// [`TrainSpec::eval_every_iters`] is set, this field is ignored.
    pub eval_every: u64,
    /// When set, evaluate each time the cluster-wide iteration count
    /// crosses another multiple of this value (a data-uniform "per epoch"
    /// cadence, like the paper's Keras callback). This keeps the
    /// early-stopping patience comparable across protocols whose *round*
    /// cadences differ wildly.
    pub eval_every_iters: Option<u64>,
    /// Virtual-time budget.
    pub max_time: SimDuration,
    /// Global-round budget.
    pub max_rounds: u64,
    /// Stop when evaluation loss reaches this value.
    pub target_loss: Option<f64>,
    /// Early-stopping patience (checked at each evaluation), if any.
    pub patience: Option<u32>,
    /// Charge RNA's GPU↔CPU staging cost (2 × gradient over PCIe) per
    /// round to protocols that ask for [`Ctx::transfer_overhead`].
    pub charge_transfer_overhead: bool,
    /// Fault injection: `(worker, at)` pairs — the worker crashes at the
    /// given instant and never computes or communicates again.
    pub crashes: Vec<(usize, SimDuration)>,
    /// Iteration-indexed fault injection shared with the threaded runtime
    /// (see [`crate::fault`]): crashes fire after a worker completes
    /// exactly `at_iter` iterations; hangs and slowdowns stretch the
    /// affected iterations' compute time in virtual time; restarts crash
    /// the worker then rejoin it after a virtual-time dwell.
    pub fault_plan: FaultPlan,
    /// Network fault injection shared with the threaded runtime: per-link
    /// drop probabilities, flaps, and partitions, applied by the fabric at
    /// delivery time ([`Ctx::send`]).
    pub net_fault_plan: NetFaultPlan,
    /// Elastic-membership script shared with the real runtimes:
    /// `num_workers` is the *capacity* (the largest membership the run
    /// ever holds); identities with a scheduled join start dormant and
    /// are admitted at their join round, retirees drain through their
    /// final round, evictees are dropped at theirs. Protocols that do not
    /// consult the plan simply run every identity from the start.
    pub churn_plan: ChurnPlan,
}

impl TrainSpec {
    /// A tiny, fast configuration for tests and examples: `n` homogeneous
    /// workers, 5 ms iterations, blob classification on a softmax model.
    pub fn smoke_test(n: usize, seed: u64) -> Self {
        use rna_workload::ComputeTimeModel;
        let profile = ModelProfile::resnet50()
            .with_sim_dim(64)
            .with_compute(ComputeTimeModel::Constant(SimDuration::from_millis(5)));
        TrainSpec {
            num_workers: n,
            profile,
            hetero: HeterogeneityModel::homogeneous(n),
            link: LinkModel::infiniband_edr(),
            task: TaskKind::Classification {
                dim: 8,
                classes: 4,
                hidden: None,
                samples: 256,
                spread: 0.4,
            },
            seed,
            batch_size: 16,
            lr: LrSchedule::Constant(0.1),
            momentum: 0.0,
            weight_decay: 0.0,
            eval_every: 5,
            eval_every_iters: None,
            max_time: SimDuration::from_secs(10),
            max_rounds: 300,
            target_loss: None,
            patience: None,
            charge_transfer_overhead: false,
            crashes: Vec::new(),
            fault_plan: FaultPlan::none(),
            net_fault_plan: NetFaultPlan::none(),
            churn_plan: ChurnPlan::none(),
        }
    }

    /// Injects a crash: `worker` dies `at` after simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn with_crash(mut self, worker: usize, at: SimDuration) -> Self {
        assert!(worker < self.num_workers, "crash target out of range");
        self.crashes.push((worker, at));
        self
    }

    /// Injects an iteration-indexed crash: `worker` dies after completing
    /// exactly `at_iter` local iterations, its final gradient discarded.
    /// This is the crash semantics the threaded runtime mirrors, which
    /// makes cross-world fault tests meaningful.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn with_crash_at_iter(mut self, worker: usize, at_iter: u64) -> Self {
        assert!(worker < self.num_workers, "crash target out of range");
        self.fault_plan = self.fault_plan.crash(worker, at_iter);
        self
    }

    /// Installs a whole [`FaultPlan`] (crashes, hangs, slowdowns). Crashes
    /// fire after the victim completes exactly `at_iter` iterations; a
    /// hang stretches the iteration it interrupts by its duration; a
    /// slowdown stretches every iteration from `from_iter` on.
    ///
    /// # Panics
    ///
    /// Panics if the plan names a worker outside `0..num_workers`.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        if let Some(max) = plan.max_worker() {
            assert!(max < self.num_workers, "fault plan names worker {max}");
        }
        self.fault_plan = plan;
        self
    }

    /// Installs a [`ChurnPlan`] (joins, retirements, evictions at global
    /// rounds). `num_workers` stays the cluster *capacity*: identities
    /// with a scheduled join start dormant. The plan is validated against
    /// the capacity and the default [`ToleranceConfig`] — the simulator
    /// has no real clocks, but keeping the admission-deadline check here
    /// means a plan rejected by the runtimes is rejected by the DES too.
    ///
    /// # Panics
    ///
    /// Panics if the plan is malformed (see
    /// [`ChurnPlan::validate`]), e.g. it names a worker outside
    /// `0..num_workers` or an admission deadline below the liveness lease.
    pub fn with_churn_plan(mut self, plan: ChurnPlan) -> Self {
        if let Err(e) = plan.validate(self.num_workers, &ToleranceConfig::default()) {
            panic!("invalid churn plan: {e}");
        }
        self.churn_plan = plan;
        self
    }

    /// Installs a [`NetFaultPlan`] (lossy links, flaps, partitions). The
    /// fabric applies it at delivery time: dropped messages are billed but
    /// never arrive.
    ///
    /// # Panics
    ///
    /// Panics if the plan names a node outside the cluster (see
    /// [`NetFaultPlan::validate`]).
    pub fn with_net_fault_plan(mut self, plan: NetFaultPlan) -> Self {
        plan.validate(self.num_workers);
        self.net_fault_plan = plan;
        self
    }

    /// Replaces the heterogeneity model.
    ///
    /// # Panics
    ///
    /// Panics if the worker counts disagree.
    pub fn with_hetero(mut self, hetero: HeterogeneityModel) -> Self {
        assert_eq!(
            hetero.num_workers(),
            self.num_workers,
            "heterogeneity model must cover every worker"
        );
        self.hetero = hetero;
        self
    }

    /// Sets the target loss.
    pub fn with_target_loss(mut self, target: f64) -> Self {
        self.target_loss = Some(target);
        self
    }

    /// Sets the virtual-time budget.
    pub fn with_max_time(mut self, t: SimDuration) -> Self {
        self.max_time = t;
        self
    }

    /// Sets the global-round budget.
    pub fn with_max_rounds(mut self, r: u64) -> Self {
        self.max_rounds = r;
        self
    }
}

/// A synchronization protocol plugged into the [`Engine`].
pub trait Protocol {
    /// The protocol's message payload.
    type Msg: Clone + std::fmt::Debug;

    /// Short protocol name used in reports.
    fn name(&self) -> &'static str;

    /// Called once before the event loop; typically starts every worker's
    /// first iteration and arms any initial probes.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// A worker finished computing local iteration `iter`; its gradient is
    /// claimable via [`Ctx::take_gradient`].
    fn on_compute_done(&mut self, ctx: &mut Ctx<'_, Self::Msg>, worker: usize, iter: u64);

    /// A protocol message arrived at node `to`.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: usize, to: usize, msg: Self::Msg);

    /// A worker crashed (fault injection). The engine has already marked
    /// it dead: it will never finish its in-flight iteration and
    /// [`Ctx::begin_compute`] on it is a no-op. Protocols that probe or
    /// gossip should stop selecting it.
    fn on_crash(&mut self, ctx: &mut Ctx<'_, Self::Msg>, worker: usize) {
        let _ = (ctx, worker);
    }

    /// A crashed worker rejoined (the rejoin half of
    /// [`FaultPlan::restart`]). The engine has already revived it: it is
    /// no longer crashed and may compute again, but its parameters are
    /// whatever they were at crash time — the protocol is responsible for
    /// re-seeding it with the current model and restarting its pipeline.
    /// The default keeps the worker out of the run (a barrier protocol
    /// with no rejoin story stays stalled, which is the paper's point).
    fn on_rejoin(&mut self, ctx: &mut Ctx<'_, Self::Msg>, worker: usize) {
        let _ = (ctx, worker);
    }

    /// Restores protocol-private state from a checkpoint blob previously
    /// passed to [`Ctx::write_checkpoint`]. Returns `false` when the
    /// protocol does not support checkpointing or the blob is malformed
    /// (the default), which makes [`Engine::resume`] fail cleanly.
    fn restore(&mut self, blob: &[u8]) -> bool {
        let _ = blob;
        false
    }

    /// Called instead of [`Protocol::on_start`] when the engine was built
    /// by [`Engine::resume`]: the protocol must restart its pipelines from
    /// the restored (quiesced) state rather than from scratch. The default
    /// delegates to `on_start`, which is only correct for protocols whose
    /// start sequence is state-driven.
    fn on_resume(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        self.on_start(ctx);
    }
}

#[derive(Debug)]
enum Event<M> {
    ComputeDone { worker: usize, iter: u64 },
    Message { from: usize, to: usize, msg: M },
    Crash { worker: usize },
    Rejoin { worker: usize },
}

/// Engine-side crash-recovery state: where checkpoints go and how often.
struct EngineRecovery {
    store: CheckpointStore,
    config: RecoveryConfig,
    /// Round of the most recent checkpoint (so a cadence round is
    /// checkpointed once, not once per triggering event).
    last_round: u64,
}

/// Engine-side state shared with protocols through [`Ctx`].
pub struct SimState<M> {
    spec: TrainSpec,
    clock: SimTime,
    queue: EventQueue<Event<M>>,
    net: NetworkModel,
    cost: CollectiveCost,
    models: Vec<Box<dyn Model>>,
    opts: Vec<Sgd>,
    eval_model: Box<dyn Model>,
    train_ds: Dataset,
    eval_ds: Dataset,
    samplers: Vec<BatchSampler>,
    workload_rngs: Vec<SimRng>,
    proto_rng: SimRng,
    codec_rng: SimRng,
    in_flight: Vec<Option<(u64, Tensor)>>,
    pending: Vec<Option<(u64, Tensor)>>,
    local_iter: Vec<u64>,
    next_iter: Vec<u64>,
    computing: Vec<bool>,
    spans: SpanTracker,
    comm_bytes: u64,
    global_round: u64,
    participation_sum: f64,
    history: History,
    early: Option<EarlyStopping>,
    stop: Option<StopReason>,
    evals_done: u64,
    crashed: Vec<bool>,
    last_top5: f64,
    workload_trace: WorkloadTrace,
    fates: Vec<WorkerFate>,
    restart_fired: Vec<bool>,
    messages_dropped: u64,
    probe_retries: u64,
    partition_rounds: u64,
    controller_failovers: u64,
    failover_rounds_lost: u64,
    ps_failovers: u64,
    checkpoints_written: u64,
    rejoin_at: Vec<Option<SimTime>>,
    recovery: Option<EngineRecovery>,
    resumed: bool,
    pool: TensorPool,
    apply_scratch: Tensor,
    eval_scratch: Tensor,
    datapath_allocs: u64,
    bytes_on_wire: u64,
    bytes_saved: u64,
    codec_error_l2: f64,
    workers_joined: u64,
    workers_retired: u64,
    regroup_events: u64,
    ps_keys_rebalanced: u64,
    snapshot_bytes_streamed: u64,
}

/// The protocol's handle onto the engine.
pub struct Ctx<'a, M>(&'a mut SimState<M>);

impl<M: Clone + std::fmt::Debug> Ctx<'_, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.0.clock
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.0.spec.num_workers
    }

    /// Node id of the central scheduler (the root node).
    pub fn controller_id(&self) -> usize {
        self.0.spec.num_workers
    }

    /// Node id of the parameter server.
    pub fn ps_id(&self) -> usize {
        self.0.spec.num_workers + 1
    }

    /// The run specification.
    pub fn spec(&self) -> &TrainSpec {
        &self.0.spec
    }

    /// Collective cost calculator over the run's link model.
    pub fn cost(&self) -> CollectiveCost {
        self.0.cost
    }

    /// Gradient payload in bytes (billed at the profile's real model size).
    pub fn grad_bytes(&self) -> u64 {
        self.0.spec.profile.grad_bytes()
    }

    /// RNA's per-round GPU↔CPU staging cost (zero when the spec does not
    /// charge it).
    pub fn transfer_overhead(&self) -> SimDuration {
        if self.0.spec.charge_transfer_overhead {
            rna_workload::transfer::TransferModel::default().per_iteration_cost(self.grad_bytes())
        } else {
            SimDuration::ZERO
        }
    }

    /// The protocol's private RNG stream.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.0.proto_rng
    }

    /// The codec's private RNG stream (stochastic-rounding draws). Separate
    /// from [`Ctx::rng`] so switching codecs never perturbs probe/election
    /// randomness, and `Lossless` runs (which never draw from it) stay
    /// bit-identical to the pre-codec engine.
    pub fn codec_rng(&mut self) -> &mut SimRng {
        &mut self.0.codec_rng
    }

    /// The global synchronization round counter.
    pub fn global_round(&self) -> u64 {
        self.0.global_round
    }

    /// The learning rate the schedule prescribes for the current round.
    pub fn current_lr(&self) -> f32 {
        self.0.spec.lr.lr_at(self.0.global_round)
    }

    /// Local iterations completed by `worker`.
    pub fn local_iter(&self, worker: usize) -> u64 {
        self.0.local_iter[worker]
    }

    /// Whether `worker` currently has an iteration in flight.
    pub fn is_computing(&self, worker: usize) -> bool {
        self.0.computing[worker]
    }

    /// Whether `worker` has crashed.
    pub fn is_crashed(&self, worker: usize) -> bool {
        self.0.crashed[worker]
    }

    /// Number of live (non-crashed) workers.
    pub fn live_workers(&self) -> usize {
        self.0.crashed.iter().filter(|&&c| !c).count()
    }

    /// Whether the run has been stopped.
    pub fn stopped(&self) -> bool {
        self.0.stop.is_some()
    }

    /// Claims the gradient produced by `worker`'s most recently finished
    /// iteration, with its local iteration number.
    pub fn take_gradient(&mut self, worker: usize) -> Option<(u64, Tensor)> {
        self.0.pending[worker].take()
    }

    /// A copy of `worker`'s current parameters.
    pub fn params(&self, worker: usize) -> Tensor {
        self.0.models[worker].params().clone()
    }

    /// Overwrites `worker`'s parameters (hierarchical broadcast / gossip
    /// averaging). Momentum is preserved, matching the paper's
    /// implementation where `set_weight()` replaces variables only.
    pub fn set_params(&mut self, worker: usize, params: &Tensor) {
        self.0.models[worker].set_params(params);
    }

    /// Starts `worker`'s next local iteration: samples a batch, computes
    /// the gradient from the worker's *current* parameters, and schedules
    /// `ComputeDone` after the workload + heterogeneity compute time.
    ///
    /// # Panics
    ///
    /// Panics if the worker already has an iteration in flight.
    pub fn begin_compute(&mut self, worker: usize) {
        let s = &mut *self.0;
        if s.crashed[worker] {
            return;
        }
        assert!(
            !s.computing[worker],
            "worker {worker} already has an iteration in flight"
        );
        if s.stop.is_some() {
            return;
        }
        let iter = s.next_iter[worker];
        if s.spec.fault_plan.crash_iter(worker) == Some(iter) {
            // The plan kills this worker after exactly `iter` completed
            // iterations: it dies instead of starting the next one.
            s.queue.schedule(s.clock, Event::Crash { worker });
            return;
        }
        if let Some((at_iter, rejoin_after_us)) = s.spec.fault_plan.restart_of(worker) {
            if at_iter == iter && !s.restart_fired[worker] {
                // Crash now, rejoin after the dwell. `restart_fired` keeps
                // the fault from re-triggering when the rejoined worker
                // starts this same iteration again. The rejoin instant is
                // remembered so a checkpoint cut during the dwell can
                // re-schedule it on resume.
                s.restart_fired[worker] = true;
                let rejoin = s.clock + SimDuration::from_micros(rejoin_after_us);
                s.rejoin_at[worker] = Some(rejoin);
                s.queue.schedule(s.clock, Event::Crash { worker });
                s.queue.schedule(rejoin, Event::Rejoin { worker });
                return;
            }
        }
        let batch = s.samplers[worker].sample(&s.train_ds);
        let (_, grad) = s.models[worker].loss_and_grad(&batch);
        s.next_iter[worker] += 1;
        s.in_flight[worker] = Some((iter, grad));
        s.computing[worker] = true;
        let units = if s.train_ds.is_sequential() {
            Some(batch.max_units())
        } else {
            None
        };
        let nominal = s
            .spec
            .profile
            .compute
            .sample(&mut s.workload_rngs[worker], units);
        let mut dur = s
            .spec
            .hetero
            .apply(worker, nominal, &mut s.workload_rngs[worker]);
        for fault in s.spec.fault_plan.for_worker(worker) {
            match fault {
                WorkerFault::HangAt { at_iter, for_us } if at_iter == iter => {
                    dur += SimDuration::from_micros(for_us);
                    if !matches!(
                        s.fates[worker],
                        WorkerFate::Crashed { .. } | WorkerFate::Restarted { .. }
                    ) {
                        s.fates[worker] = WorkerFate::Hung { at_iter };
                    }
                }
                WorkerFault::SlowFrom { from_iter, .. }
                | WorkerFault::GrayFrom { from_iter, .. }
                    if from_iter <= iter =>
                {
                    // Constant straggler and gray ramp share the shared
                    // slowdown arithmetic so the worlds cannot drift.
                    dur += SimDuration::from_micros(fault.slowdown_at(iter));
                    if s.fates[worker] == WorkerFate::Healthy {
                        s.fates[worker] = WorkerFate::Slowed { from_iter };
                    }
                }
                _ => {}
            }
        }
        s.workload_trace.record(worker, dur);
        s.spans.begin(worker, SpanKind::Compute, s.clock);
        s.queue
            .schedule(s.clock + dur, Event::ComputeDone { worker, iter });
    }

    /// Sends a protocol message across the network; delivery is delayed by
    /// the link's α–β cost for `bytes` and the bytes are accounted. Under
    /// a [`NetFaultPlan`] the fabric may eat the message: the bytes are
    /// still billed (the sender did transmit) but nothing arrives, and
    /// [`Ctx::messages_dropped`] ticks.
    pub fn send(&mut self, from: usize, to: usize, bytes: u64, msg: M) {
        let s = &mut *self.0;
        if from != to {
            s.comm_bytes += bytes;
        }
        match s.net.try_delivery(from, to, bytes, s.clock) {
            Some(at) => s.queue.schedule(at, Event::Message { from, to, msg }),
            None => s.messages_dropped += 1,
        }
    }

    /// Whether the `a`↔`b` link is structurally up right now (not inside a
    /// flap window or partition). Always `true` on a fault-free fabric;
    /// lossy-but-up links count as up. Protocols use this to model what a
    /// node can *observe* about its connectivity — e.g. a hierarchical
    /// group deciding whether the parameter server is reachable.
    pub fn link_up(&self, a: usize, b: usize) -> bool {
        self.0.net.link_up(a, b, self.0.clock)
    }

    /// Whether the run injects network faults at all. Retry machinery
    /// arms itself only when this is true, so fault-free runs stay
    /// event-for-event identical to the pre-fault engine.
    pub fn net_faults_enabled(&self) -> bool {
        self.0.net.has_faults()
    }

    /// The run's fault plan. Worker faults (crash/hang/slow/restart) are
    /// executed by the engine itself; *control-plane* faults (controller
    /// and PS-shard crashes) are consulted and executed by the protocol,
    /// which owns the control plane.
    pub fn fault_plan(&self) -> &crate::fault::FaultPlan {
        &self.0.spec.fault_plan
    }

    /// Records one probe-round retry (re-issued after a timeout).
    pub fn note_probe_retry(&mut self) {
        self.0.probe_retries += 1;
    }

    /// Records one partition-degraded round (a live node was unreachable
    /// where the protocol needed it).
    pub fn note_partition_round(&mut self) {
        self.0.partition_rounds += 1;
    }

    /// Messages the fabric has dropped so far.
    pub fn messages_dropped(&self) -> u64 {
        self.0.messages_dropped
    }

    /// The engine's tensor-buffer pool. Protocols route their reduce data
    /// path through it so steady-state rounds recycle buffers instead of
    /// allocating ([`rna_tensor::TensorPool`]).
    pub fn pool_mut(&mut self) -> &mut TensorPool {
        &mut self.0.pool
    }

    /// Returns a tensor's buffer to the engine's pool for reuse.
    pub fn pool_release(&mut self, t: Tensor) {
        self.0.pool.release(t);
    }

    /// Accumulates `n` fresh tensor-buffer allocations observed on the
    /// reduce data path into the run's [`RunResult::datapath_allocs`]
    /// counter (protocols sample `rna_tensor::alloc::count()` as a delta
    /// around their reduce regions; the hook is debug-only, so `n` is 0 in
    /// release builds).
    pub fn note_datapath_allocs(&mut self, n: u64) {
        self.0.datapath_allocs += n;
    }

    /// Accounts one gradient exchange's encoded wire footprint: `actual`
    /// bytes really moved (codec frames, headers included) against the
    /// `baseline` a lossless wire would have moved for the same exchange.
    /// Feeds [`RunResult::bytes_on_wire`] / [`RunResult::bytes_saved`].
    pub fn note_wire_bytes(&mut self, actual: u64, baseline: u64) {
        self.0.bytes_on_wire += actual;
        self.0.bytes_saved += baseline.saturating_sub(actual);
    }

    /// Accumulates the L2 norm of one lossy encode's error-feedback
    /// residual into [`RunResult::codec_error_l2`].
    pub fn note_codec_error(&mut self, l2: f64) {
        self.0.codec_error_l2 += l2;
    }

    /// Schedules a message to `to` after `delay` with no network charge —
    /// the idiom for completion timers (e.g. "the ring finishes in T").
    pub fn send_after(&mut self, to: usize, delay: SimDuration, msg: M) {
        let s = &mut *self.0;
        s.queue
            .schedule(s.clock + delay, Event::Message { from: to, to, msg });
    }

    /// Accounts `bytes` of traffic that the protocol modelled through a
    /// cost formula rather than individual messages (e.g. a whole ring
    /// AllReduce).
    pub fn charge_bytes(&mut self, bytes: u64) {
        self.0.comm_bytes += bytes;
    }

    /// Marks `worker`'s current span (e.g. `Wait` while blocked on a
    /// barrier, `Communicate` while its gradients are on the wire).
    pub fn set_span(&mut self, worker: usize, kind: SpanKind) {
        let s = &mut *self.0;
        s.spans.begin(worker, kind, s.clock);
    }

    /// Applies the reduced gradient to every listed worker with the given
    /// learning-rate scale (RNA passes the contributor count, BSP passes 1).
    ///
    /// Runs through a persistent scratch tensor — the per-worker parameter
    /// clone the naive implementation made each round is replaced by a
    /// `copy_from` into reused storage, so applying allocates nothing.
    pub fn apply_reduced(&mut self, workers: &[usize], grad: &Tensor, lr_scale: f32) {
        let s = &mut *self.0;
        let lr = s.spec.lr.lr_at(s.global_round);
        for &w in workers {
            s.opts[w].set_lr(lr);
            s.apply_scratch.copy_from(s.models[w].params());
            s.opts[w].step(&mut s.apply_scratch, grad, lr_scale);
            s.models[w].set_params(&s.apply_scratch);
        }
    }

    /// Applies `worker`'s own gradient to its own replica (AD-PSGD's local
    /// step).
    pub fn apply_local(&mut self, worker: usize, grad: &Tensor, lr_scale: f32) {
        self.apply_reduced(&[worker], grad, lr_scale);
    }

    /// Atomically averages the parameters of two workers (AD-PSGD's
    /// pairwise model averaging). Allocation-free: the average is formed
    /// in the persistent scratch tensor.
    pub fn average_pair(&mut self, a: usize, b: usize) {
        let s = &mut *self.0;
        s.apply_scratch.copy_from(s.models[a].params());
        s.apply_scratch.lerp(s.models[b].params(), 0.5);
        s.models[a].set_params(&s.apply_scratch);
        s.models[b].set_params(&s.apply_scratch);
    }

    /// Completes one global synchronization round: bumps the round counter,
    /// records the participation fraction, and (on the evaluation cadence)
    /// evaluates the mean model, checking the target-loss and
    /// early-stopping criteria.
    pub fn finish_round(&mut self, participation: f64) {
        let s = &mut *self.0;
        s.global_round += 1;
        s.participation_sum += participation;
        match s.spec.eval_every_iters {
            Some(every) => {
                // Data-uniform cadence: evaluate when the cluster-wide
                // iteration count crosses another multiple of `every`.
                let iters: u64 = s.local_iter.iter().sum();
                if iters / every > s.evals_done {
                    s.evals_done = iters / every;
                    evaluate(s);
                }
            }
            None => {
                if s.global_round.is_multiple_of(s.spec.eval_every) {
                    evaluate(s);
                }
            }
        }
        if s.stop.is_none() && s.global_round >= s.spec.max_rounds {
            s.stop = Some(StopReason::MaxRounds);
        }
    }

    /// Requests a stop with the given reason (first reason wins).
    pub fn stop(&mut self, reason: StopReason) {
        if self.0.stop.is_none() {
            self.0.stop = Some(reason);
        }
    }

    /// Whether the run is due for a crash-consistent checkpoint: recovery
    /// is enabled, the current round sits on the cadence, and this round
    /// has not been checkpointed yet. Protocols that support checkpointing
    /// poll this after completing a round, quiesce their members, and then
    /// call [`Ctx::write_checkpoint`].
    pub fn checkpoint_due(&self) -> bool {
        match &self.0.recovery {
            Some(r) => {
                let round = self.0.global_round;
                round > 0 && round.is_multiple_of(r.config.every) && r.last_round != round
            }
            None => false,
        }
    }

    /// Writes a crash-consistent checkpoint: the engine's full training
    /// state (clock, counters, every worker's parameters, optimizer state,
    /// RNG stream positions, convergence history) plus the protocol's own
    /// `blob` (its caches, round state, and journal). A checkpoint write
    /// failure is reported on stderr and the run continues — losing a
    /// checkpoint must never kill training.
    ///
    /// The protocol must be quiesced when it calls this: no iteration in
    /// flight anywhere (every pending gradient drained into protocol state
    /// captured by `blob`), no protocol message in flight that cannot be
    /// safely lost. [`Engine::resume`] rebuilds exactly this state.
    pub fn write_checkpoint(&mut self, blob: &[u8]) {
        let s = &mut *self.0;
        debug_assert!(
            s.computing.iter().all(|&c| !c),
            "checkpoint cut while an iteration is in flight"
        );
        let Some(r) = &mut s.recovery else {
            return;
        };
        let engine = encode_engine_state_fields(
            s.clock,
            &s.models,
            &s.opts,
            &s.samplers,
            &s.workload_rngs,
            &s.proto_rng,
            &s.codec_rng,
            &s.local_iter,
            &s.next_iter,
            &s.crashed,
            &s.restart_fired,
            &s.rejoin_at,
            &s.fates,
            &s.history,
            EngineCounters {
                global_round: s.global_round,
                participation_sum: s.participation_sum,
                comm_bytes: s.comm_bytes,
                evals_done: s.evals_done,
                messages_dropped: s.messages_dropped,
                probe_retries: s.probe_retries,
                partition_rounds: s.partition_rounds,
                controller_failovers: s.controller_failovers,
                failover_rounds_lost: s.failover_rounds_lost,
                ps_failovers: s.ps_failovers,
                checkpoints_written: s.checkpoints_written + 1,
                last_top5: s.last_top5,
                bytes_on_wire: s.bytes_on_wire,
                bytes_saved: s.bytes_saved,
                codec_error_l2: s.codec_error_l2,
                workers_joined: s.workers_joined,
                workers_retired: s.workers_retired,
                regroup_events: s.regroup_events,
                ps_keys_rebalanced: s.ps_keys_rebalanced,
                snapshot_bytes_streamed: s.snapshot_bytes_streamed,
            },
        );
        let mut payload = Vec::with_capacity(engine.len() + blob.len() + 16);
        wire::put_u64(&mut payload, engine.len() as u64);
        payload.extend_from_slice(&engine);
        wire::put_u64(&mut payload, blob.len() as u64);
        payload.extend_from_slice(blob);
        match r.store.save(&payload) {
            Ok(()) => {
                r.last_round = s.global_round;
                s.checkpoints_written += 1;
            }
            Err(e) => eprintln!(
                "checkpoint write failed at round {}: {e} (continuing)",
                s.global_round
            ),
        }
    }

    /// Records one controller failover and the probe rounds it cost.
    pub fn note_controller_failover(&mut self, rounds_lost: u64) {
        self.0.controller_failovers += 1;
        self.0.failover_rounds_lost += rounds_lost;
    }

    /// Records one PS shard primary crash (degraded to its replica).
    pub fn note_ps_failover(&mut self) {
        self.0.ps_failovers += 1;
    }

    /// The run's elastic-membership script. Protocols that honour it
    /// keep joiners dormant until their join round and process leaves at
    /// round edges; the engine itself never consults it.
    pub fn churn_plan(&self) -> &ChurnPlan {
        &self.0.spec.churn_plan
    }

    /// Records one mid-run admission: `worker` joined and was streamed
    /// `snapshot_bytes` of model snapshot.
    pub fn note_worker_joined(&mut self, worker: usize, snapshot_bytes: u64) {
        let _ = worker;
        self.0.workers_joined += 1;
        self.0.snapshot_bytes_streamed += snapshot_bytes;
    }

    /// Records one graceful retirement: `worker` left after contributing
    /// through global round `at_round` (its final gradient drained).
    pub fn note_worker_retired(&mut self, worker: usize, at_round: u64) {
        self.0.workers_retired += 1;
        self.0.fates[worker] = WorkerFate::Retired { at_round };
    }

    /// Records one eviction: `worker` was removed as round `at_round`
    /// began, in-flight work discarded.
    pub fn note_worker_evicted(&mut self, worker: usize, at_round: u64) {
        self.0.workers_retired += 1;
        self.0.fates[worker] = WorkerFate::Evicted { at_round };
    }

    /// Records one online regroup (topology re-split committed at a
    /// quiesce point) and the PS keys it rehomed.
    pub fn note_regroup(&mut self, ps_keys_rebalanced: u64) {
        self.0.regroup_events += 1;
        self.0.ps_keys_rebalanced += ps_keys_rebalanced;
    }

    /// The compute duration of `worker`'s most recently scheduled
    /// iteration (the engine logs every workload draw into its trace at
    /// launch, and a worker has at most one iteration in flight, so inside
    /// a `ComputeDone` handler this is the duration of the iteration that
    /// just finished). Pure compute time — excludes waits and
    /// communication — which is what a speed estimator wants.
    pub fn last_compute_time(&self, worker: usize) -> Option<SimDuration> {
        self.0.workload_trace.durations(worker).last().copied()
    }
}

fn evaluate<M>(s: &mut SimState<M>) {
    // Evaluate the mean of the replicas — the standard metric for
    // decentralized training (all replicas coincide under BSP). The mean
    // is formed in a persistent scratch tensor (allocation-free; zeroing
    // then summing is bit-identical to summing into a fresh zeros tensor).
    s.eval_scratch.fill_zero();
    for m in &s.models {
        s.eval_scratch.add_assign(m.params());
    }
    s.eval_scratch.scale(1.0 / s.models.len() as f32);
    s.eval_model.set_params(&s.eval_scratch);
    let batch = s.eval_ds.full_batch();
    let loss = f64::from(s.eval_model.loss(&batch));
    let acc = f64::from(s.eval_model.accuracy(&batch));
    s.last_top5 = f64::from(s.eval_model.top_k_accuracy(&batch, 5));
    s.history
        .record(s.clock.as_secs_f64(), s.global_round, loss, acc);
    if let Some(target) = s.spec.target_loss {
        if loss <= target && s.stop.is_none() {
            s.stop = Some(StopReason::TargetReached);
        }
    }
    if let Some(early) = &mut s.early {
        if early.update(loss) && s.stop.is_none() {
            s.stop = Some(StopReason::EarlyStopped);
        }
    }
}

/// The discrete-event engine driving one protocol over one [`TrainSpec`].
pub struct Engine<P: Protocol> {
    state: SimState<P::Msg>,
    protocol: P,
}

impl<P: Protocol> Engine<P> {
    /// Builds the engine: constructs the dataset, one model replica and
    /// optimizer per worker (all replicas start from identical parameters),
    /// and forks the RNG streams.
    ///
    /// # Panics
    ///
    /// Panics if the spec is inconsistent (zero workers, heterogeneity
    /// model of the wrong size, zero batch).
    pub fn new(spec: TrainSpec, protocol: P) -> Self {
        assert!(spec.num_workers > 0, "need at least one worker");
        assert_eq!(
            spec.hetero.num_workers(),
            spec.num_workers,
            "heterogeneity model must cover every worker"
        );
        assert!(spec.batch_size > 0, "batch size must be positive");
        assert!(spec.eval_every > 0, "evaluation cadence must be positive");
        let mut root = SimRng::seed(spec.seed);
        let mut data_rng = root.fork(1);
        let (train_ds, eval_ds, template) = spec.task.build(&mut data_rng);
        let n = spec.num_workers;
        let models: Vec<Box<dyn Model>> = (0..n).map(|_| template.clone_model()).collect();
        let opts = (0..n)
            .map(|_| {
                Sgd::new(
                    spec.lr.lr_at(0),
                    spec.momentum,
                    spec.weight_decay,
                    template.num_params(),
                )
            })
            .collect();
        // Planned joiners draw their streams from a disjoint grant
        // namespace (`(5 << 32) + 2w` / `+ 2w + 1`, mirroring the runtime's
        // join-grant convention). `fork` consumes exactly one parent draw
        // regardless of the key, so handing a joiner a different key leaves
        // every original member's stream — and the protocol/codec streams
        // forked after this block — bit-identical to a churn-free run of
        // the same seed.
        let joins = spec.churn_plan.clone();
        let samplers = (0..n)
            .map(|w| {
                let key = if joins.join_of(w).is_some() {
                    (5 << 32) + 2 * w as u64
                } else {
                    100 + w as u64
                };
                BatchSampler::new(root.fork(key), spec.batch_size)
            })
            .collect();
        let workload_rngs = (0..n)
            .map(|w| {
                let key = if joins.join_of(w).is_some() {
                    (5 << 32) + 2 * w as u64 + 1
                } else {
                    200 + w as u64
                };
                root.fork(key)
            })
            .collect();
        let proto_rng = root.fork(300);
        // Forked after every pre-existing stream: adding the codec stream
        // leaves data/sampler/workload/protocol draws untouched, so runs
        // that never use it (Lossless) replay the pre-codec engine exactly.
        let codec_rng = root.fork(400);
        let num_params = template.num_params();
        // A small min-delta keeps noisy near-plateau evaluations from
        // resetting the patience counter forever.
        let early = spec.patience.map(|p| EarlyStopping::new(p, 1e-3));
        spec.net_fault_plan.validate(n);
        let state = SimState {
            net: NetworkModel::uniform(spec.link).with_faults(spec.net_fault_plan.compile(n)),
            cost: CollectiveCost::new(spec.link),
            eval_model: template,
            train_ds,
            eval_ds,
            models,
            opts,
            samplers,
            workload_rngs,
            proto_rng,
            codec_rng,
            in_flight: vec![None; n],
            pending: vec![None; n],
            local_iter: vec![0; n],
            next_iter: vec![0; n],
            computing: vec![false; n],
            spans: SpanTracker::new(n),
            comm_bytes: 0,
            global_round: 0,
            participation_sum: 0.0,
            history: History::new(),
            early,
            stop: None,
            evals_done: 0,
            crashed: vec![false; n],
            last_top5: 0.0,
            workload_trace: WorkloadTrace::new(n),
            fates: vec![WorkerFate::Healthy; n],
            restart_fired: vec![false; n],
            messages_dropped: 0,
            probe_retries: 0,
            partition_rounds: 0,
            controller_failovers: 0,
            failover_rounds_lost: 0,
            ps_failovers: 0,
            checkpoints_written: 0,
            rejoin_at: vec![None; n],
            recovery: None,
            resumed: false,
            pool: TensorPool::new(),
            apply_scratch: Tensor::zeros(num_params),
            eval_scratch: Tensor::zeros(num_params),
            datapath_allocs: 0,
            bytes_on_wire: 0,
            bytes_saved: 0,
            codec_error_l2: 0.0,
            workers_joined: 0,
            workers_retired: 0,
            regroup_events: 0,
            ps_keys_rebalanced: 0,
            snapshot_bytes_streamed: 0,
            clock: SimTime::ZERO,
            // Steady state keeps a few events in flight per worker
            // (compute-done plus protocol messages); sizing the heap up
            // front keeps a 100k-worker run from rehoming it repeatedly.
            queue: EventQueue::with_capacity(4 * n + 64),
            spec,
        };
        Engine { state, protocol }
    }

    /// Enables crash-consistent checkpointing: every `config.every`
    /// completed rounds the protocol quiesces and the engine writes its
    /// full state to `store` (see [`Ctx::write_checkpoint`]). Only
    /// protocols that poll [`Ctx::checkpoint_due`] actually checkpoint —
    /// for others this is inert.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation (zero cadence).
    pub fn with_recovery(mut self, store: CheckpointStore, config: RecoveryConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid recovery config: {e}");
        }
        self.state.recovery = Some(EngineRecovery {
            store,
            config,
            last_round: 0,
        });
        self
    }

    /// Rebuilds an engine from the latest intact checkpoint in `store` and
    /// prepares it to continue the run: engine state (clock, counters,
    /// parameters, optimizer state, RNG stream positions, history) is
    /// restored exactly, `protocol` is restored through
    /// [`Protocol::restore`], and [`Engine::run`] will enter via
    /// [`Protocol::on_resume`]. On a fault-free fabric the continuation is
    /// bit-identical to the uninterrupted run: same loss trajectory, wall
    /// time, iteration counts, and comm bytes. (Execution-side traces —
    /// span breakdowns, timelines, the workload trace, pool warm-up —
    /// restart at the checkpoint; and the drop-RNG position of a *faulty*
    /// fabric is not captured, so net-fault runs resume correctly but not
    /// bit-identically.)
    ///
    /// `spec` and `protocol` must be constructed with the same parameters
    /// as the original run; the checkpoint stores no spec and cannot
    /// detect a divergent one beyond size mismatches.
    ///
    /// # Errors
    ///
    /// [`RecoveryError`] when no intact checkpoint generation exists or
    /// the payload does not match the spec (wrong worker count, wrong
    /// model size, or a protocol that cannot restore the blob).
    pub fn resume(
        spec: TrainSpec,
        protocol: P,
        store: CheckpointStore,
        config: RecoveryConfig,
    ) -> Result<Self, RecoveryError> {
        let loaded = store.load_latest()?;
        let mut engine = Engine::new(spec, protocol);
        let mut r = Reader::new(&loaded.payload);
        let engine_len = r
            .u64()
            .ok_or_else(|| RecoveryError::Corrupt("payload too short".into()))?;
        let engine_bytes = read_exact(&mut r, engine_len)?;
        let proto_len = r
            .u64()
            .ok_or_else(|| RecoveryError::Corrupt("payload too short".into()))?;
        let proto_bytes = read_exact(&mut r, proto_len)?;
        restore_engine_state(&mut engine.state, engine_bytes)?;
        if !engine.protocol.restore(proto_bytes) {
            return Err(RecoveryError::Corrupt(
                "protocol rejected its checkpoint blob".into(),
            ));
        }
        engine.state.resumed = true;
        let last_round = engine.state.global_round;
        engine.state.recovery = Some(EngineRecovery {
            store,
            config,
            last_round,
        });
        Ok(engine)
    }

    /// Runs the event loop to completion and returns the results.
    pub fn run(mut self) -> RunResult {
        if self.state.resumed {
            // Re-arm only the fault events still in the future: time-based
            // crashes past the restored clock and the rejoin timers that
            // were pending when the checkpoint was cut.
            let clock = self.state.clock;
            for (worker, at) in self.state.spec.crashes.clone() {
                if SimTime::ZERO + at > clock {
                    self.state
                        .queue
                        .schedule(SimTime::ZERO + at, Event::Crash { worker });
                }
            }
            for worker in 0..self.state.spec.num_workers {
                if let Some(at) = self.state.rejoin_at[worker] {
                    self.state.queue.schedule(at, Event::Rejoin { worker });
                }
            }
            self.protocol.on_resume(&mut Ctx(&mut self.state));
        } else {
            for (worker, at) in self.state.spec.crashes.clone() {
                self.state
                    .queue
                    .schedule(SimTime::ZERO + at, Event::Crash { worker });
            }
            self.protocol.on_start(&mut Ctx(&mut self.state));
        }
        let max_time = SimTime::ZERO + self.state.spec.max_time;
        let mut events: u64 = 0;
        const EVENT_BUDGET: u64 = 50_000_000;
        // Same-instant events are drained as one batch: when thousands of
        // workers finish a barrier on the same virtual nanosecond this
        // saves a heap sift-down per event, and anything a handler
        // schedules mid-batch sorts after the whole batch anyway (see
        // `EventQueue::pop_batch`), so delivery order — and therefore every
        // replay — is identical to the one-pop-at-a-time loop. The batch
        // buffer is reused across instants.
        let mut batch = Vec::new();
        'event_loop: while self.state.stop.is_none() {
            batch.clear();
            let Some(at) = self.state.queue.pop_batch(&mut batch) else {
                self.state.stop = Some(StopReason::Idle);
                break;
            };
            if at > max_time {
                self.state.clock = max_time;
                self.state.stop = Some(StopReason::MaxTime);
                break;
            }
            self.state.clock = at;
            for (_, ev) in batch.drain(..) {
                if self.state.stop.is_some() {
                    break 'event_loop;
                }
                events += 1;
                if events > EVENT_BUDGET {
                    self.state.stop = Some(StopReason::MaxTime);
                    break 'event_loop;
                }
                match ev {
                    Event::ComputeDone { worker, iter } => {
                        let s = &mut self.state;
                        if s.crashed[worker] {
                            continue;
                        }
                        s.computing[worker] = false;
                        s.local_iter[worker] = iter + 1;
                        s.pending[worker] = s.in_flight[worker].take();
                        // Default to Wait; the protocol overrides by starting
                        // the next compute or marking Communicate.
                        s.spans.begin(worker, SpanKind::Wait, s.clock);
                        self.protocol
                            .on_compute_done(&mut Ctx(&mut self.state), worker, iter);
                    }
                    Event::Message { from, to, msg } => {
                        self.protocol
                            .on_message(&mut Ctx(&mut self.state), from, to, msg);
                    }
                    Event::Crash { worker } => {
                        let s = &mut self.state;
                        if s.crashed[worker] {
                            continue;
                        }
                        s.crashed[worker] = true;
                        s.computing[worker] = false;
                        s.in_flight[worker] = None;
                        s.pending[worker] = None;
                        s.fates[worker] = if s.restart_fired[worker] {
                            WorkerFate::Restarted {
                                at_iter: s.local_iter[worker],
                                rejoined: false,
                            }
                        } else {
                            WorkerFate::Crashed {
                                at_iter: s.local_iter[worker],
                            }
                        };
                        s.spans.end(worker, s.clock);
                        self.protocol.on_crash(&mut Ctx(&mut self.state), worker);
                    }
                    Event::Rejoin { worker } => {
                        let s = &mut self.state;
                        s.rejoin_at[worker] = None;
                        if !s.crashed[worker] {
                            continue;
                        }
                        s.crashed[worker] = false;
                        s.computing[worker] = false;
                        if let WorkerFate::Restarted { at_iter, .. } = s.fates[worker] {
                            s.fates[worker] = WorkerFate::Restarted {
                                at_iter,
                                rejoined: true,
                            };
                        }
                        s.spans.begin(worker, SpanKind::Wait, s.clock);
                        self.protocol.on_rejoin(&mut Ctx(&mut self.state), worker);
                    }
                }
            }
        }
        // Final evaluation so every run ends with a fresh measurement.
        evaluate(&mut self.state);
        let mut s = self.state;
        let timeline =
            crate::timeline::Timeline::from_log(s.spec.num_workers, &s.spans.take_log(), s.clock);
        RunResult {
            protocol: self.protocol.name().to_string(),
            wall_time: s.clock - SimTime::ZERO,
            global_rounds: s.global_round,
            worker_iterations: s.local_iter,
            history: s.history,
            breakdown: s.spans.finish(s.clock),
            comm_bytes: s.comm_bytes,
            participation_sum: s.participation_sum,
            stop_reason: s.stop.unwrap_or(StopReason::Idle),
            final_top5: s.last_top5,
            workload_trace: s.workload_trace,
            timeline,
            worker_fates: s.fates,
            messages_dropped: s.messages_dropped,
            probe_retries: s.probe_retries,
            partition_rounds: s.partition_rounds,
            controller_failovers: s.controller_failovers,
            failover_rounds_lost: s.failover_rounds_lost,
            ps_failovers: s.ps_failovers,
            checkpoints_written: s.checkpoints_written,
            datapath_allocs: s.datapath_allocs,
            bytes_on_wire: s.bytes_on_wire,
            bytes_saved: s.bytes_saved,
            codec_error_l2: s.codec_error_l2,
            workers_joined: s.workers_joined,
            workers_retired: s.workers_retired,
            regroup_events: s.regroup_events,
            ps_keys_rebalanced: s.ps_keys_rebalanced,
            snapshot_bytes_streamed: s.snapshot_bytes_streamed,
        }
    }
}

/// Scalar counters bundled into the engine checkpoint section.
struct EngineCounters {
    global_round: u64,
    participation_sum: f64,
    comm_bytes: u64,
    evals_done: u64,
    messages_dropped: u64,
    probe_retries: u64,
    partition_rounds: u64,
    controller_failovers: u64,
    failover_rounds_lost: u64,
    ps_failovers: u64,
    checkpoints_written: u64,
    last_top5: f64,
    bytes_on_wire: u64,
    bytes_saved: u64,
    codec_error_l2: f64,
    workers_joined: u64,
    workers_retired: u64,
    regroup_events: u64,
    ps_keys_rebalanced: u64,
    snapshot_bytes_streamed: u64,
}

fn put_fate(out: &mut Vec<u8>, fate: &WorkerFate) {
    match *fate {
        WorkerFate::Healthy => wire::put_u32(out, 0),
        WorkerFate::Crashed { at_iter } => {
            wire::put_u32(out, 1);
            wire::put_u64(out, at_iter);
        }
        WorkerFate::Hung { at_iter } => {
            wire::put_u32(out, 2);
            wire::put_u64(out, at_iter);
        }
        WorkerFate::Slowed { from_iter } => {
            wire::put_u32(out, 3);
            wire::put_u64(out, from_iter);
        }
        WorkerFate::Restarted { at_iter, rejoined } => {
            wire::put_u32(out, 4);
            wire::put_u64(out, at_iter);
            wire::put_u32(out, u32::from(rejoined));
        }
        WorkerFate::Retired { at_round } => {
            wire::put_u32(out, 5);
            wire::put_u64(out, at_round);
        }
        WorkerFate::Evicted { at_round } => {
            wire::put_u32(out, 6);
            wire::put_u64(out, at_round);
        }
    }
}

fn read_fate(r: &mut Reader<'_>) -> Option<WorkerFate> {
    Some(match r.u32()? {
        0 => WorkerFate::Healthy,
        1 => WorkerFate::Crashed { at_iter: r.u64()? },
        2 => WorkerFate::Hung { at_iter: r.u64()? },
        3 => WorkerFate::Slowed {
            from_iter: r.u64()?,
        },
        4 => WorkerFate::Restarted {
            at_iter: r.u64()?,
            rejoined: r.u32()? != 0,
        },
        5 => WorkerFate::Retired { at_round: r.u64()? },
        6 => WorkerFate::Evicted { at_round: r.u64()? },
        _ => return None,
    })
}

/// Serializes the engine's training state at a quiesce point. Split out of
/// [`Ctx::write_checkpoint`] so the borrow of each field is explicit.
#[allow(clippy::too_many_arguments)]
fn encode_engine_state_fields(
    clock: SimTime,
    models: &[Box<dyn Model>],
    opts: &[Sgd],
    samplers: &[BatchSampler],
    workload_rngs: &[SimRng],
    proto_rng: &SimRng,
    codec_rng: &SimRng,
    local_iter: &[u64],
    next_iter: &[u64],
    crashed: &[bool],
    restart_fired: &[bool],
    rejoin_at: &[Option<SimTime>],
    fates: &[WorkerFate],
    history: &History,
    c: EngineCounters,
) -> Vec<u8> {
    let n = models.len();
    let mut out = Vec::new();
    wire::put_u64(&mut out, (clock - SimTime::ZERO).as_nanos());
    wire::put_u64(&mut out, c.global_round);
    wire::put_f64(&mut out, c.participation_sum);
    wire::put_u64(&mut out, c.comm_bytes);
    wire::put_u64(&mut out, c.evals_done);
    wire::put_u64(&mut out, c.messages_dropped);
    wire::put_u64(&mut out, c.probe_retries);
    wire::put_u64(&mut out, c.partition_rounds);
    wire::put_u64(&mut out, c.controller_failovers);
    wire::put_u64(&mut out, c.failover_rounds_lost);
    wire::put_u64(&mut out, c.ps_failovers);
    wire::put_u64(&mut out, c.checkpoints_written);
    wire::put_f64(&mut out, c.last_top5);
    wire::put_u64(&mut out, c.bytes_on_wire);
    wire::put_u64(&mut out, c.bytes_saved);
    wire::put_f64(&mut out, c.codec_error_l2);
    wire::put_u64(&mut out, c.workers_joined);
    wire::put_u64(&mut out, c.workers_retired);
    wire::put_u64(&mut out, c.regroup_events);
    wire::put_u64(&mut out, c.ps_keys_rebalanced);
    wire::put_u64(&mut out, c.snapshot_bytes_streamed);
    wire::put_u64(&mut out, n as u64);
    wire::put_u64(&mut out, models[0].num_params() as u64);
    for w in 0..n {
        wire::put_u64(&mut out, local_iter[w]);
        wire::put_u64(&mut out, next_iter[w]);
        wire::put_u32(&mut out, u32::from(crashed[w]));
        wire::put_u32(&mut out, u32::from(restart_fired[w]));
        match rejoin_at[w] {
            Some(at) => {
                wire::put_u32(&mut out, 1);
                wire::put_u64(&mut out, (at - SimTime::ZERO).as_nanos());
            }
            None => wire::put_u32(&mut out, 0),
        }
        put_fate(&mut out, &fates[w]);
        wire::put_tensor(&mut out, models[w].params());
        wire::put_tensor(&mut out, opts[w].velocity());
        recovery::put_rng(&mut out, &samplers[w].rng_state());
        recovery::put_rng(&mut out, &workload_rngs[w].state());
    }
    recovery::put_rng(&mut out, &proto_rng.state());
    recovery::put_rng(&mut out, &codec_rng.state());
    wire::put_u64(&mut out, history.points().len() as u64);
    for p in history.points() {
        wire::put_f64(&mut out, p.time_s);
        wire::put_u64(&mut out, p.iteration);
        wire::put_f64(&mut out, p.loss);
        wire::put_f64(&mut out, p.accuracy);
    }
    out
}

fn read_exact<'a>(r: &mut Reader<'a>, len: u64) -> Result<&'a [u8], RecoveryError> {
    r.bytes_exact(len as usize)
        .ok_or_else(|| RecoveryError::Corrupt("section length exceeds payload".into()))
}

fn corrupt(why: &str) -> RecoveryError {
    RecoveryError::Corrupt(why.into())
}

/// Restores the engine section written by [`encode_engine_state_fields`]
/// into a freshly built [`SimState`].
fn restore_engine_state<M>(s: &mut SimState<M>, bytes: &[u8]) -> Result<(), RecoveryError> {
    let r = &mut Reader::new(bytes);
    let short = || corrupt("engine section truncated");
    let clock_ns = r.u64().ok_or_else(short)?;
    s.clock = SimTime::ZERO + SimDuration::from_nanos(clock_ns);
    s.global_round = r.u64().ok_or_else(short)?;
    s.participation_sum = r.f64().ok_or_else(short)?;
    s.comm_bytes = r.u64().ok_or_else(short)?;
    s.evals_done = r.u64().ok_or_else(short)?;
    s.messages_dropped = r.u64().ok_or_else(short)?;
    s.probe_retries = r.u64().ok_or_else(short)?;
    s.partition_rounds = r.u64().ok_or_else(short)?;
    s.controller_failovers = r.u64().ok_or_else(short)?;
    s.failover_rounds_lost = r.u64().ok_or_else(short)?;
    s.ps_failovers = r.u64().ok_or_else(short)?;
    s.checkpoints_written = r.u64().ok_or_else(short)?;
    s.last_top5 = r.f64().ok_or_else(short)?;
    s.bytes_on_wire = r.u64().ok_or_else(short)?;
    s.bytes_saved = r.u64().ok_or_else(short)?;
    s.codec_error_l2 = r.f64().ok_or_else(short)?;
    s.workers_joined = r.u64().ok_or_else(short)?;
    s.workers_retired = r.u64().ok_or_else(short)?;
    s.regroup_events = r.u64().ok_or_else(short)?;
    s.ps_keys_rebalanced = r.u64().ok_or_else(short)?;
    s.snapshot_bytes_streamed = r.u64().ok_or_else(short)?;
    let n = r.u64().ok_or_else(short)? as usize;
    if n != s.spec.num_workers {
        return Err(corrupt("worker count mismatch"));
    }
    let num_params = r.u64().ok_or_else(short)? as usize;
    if num_params != s.models[0].num_params() {
        return Err(corrupt("model size mismatch"));
    }
    for w in 0..n {
        s.local_iter[w] = r.u64().ok_or_else(short)?;
        s.next_iter[w] = r.u64().ok_or_else(short)?;
        s.crashed[w] = r.u32().ok_or_else(short)? != 0;
        s.restart_fired[w] = r.u32().ok_or_else(short)? != 0;
        s.rejoin_at[w] = match r.u32().ok_or_else(short)? {
            0 => None,
            1 => Some(SimTime::ZERO + SimDuration::from_nanos(r.u64().ok_or_else(short)?)),
            _ => return Err(corrupt("bad rejoin tag")),
        };
        s.fates[w] = read_fate(r).ok_or_else(|| corrupt("bad worker fate"))?;
        let params = r.tensor().ok_or_else(short)?;
        if params.len() != num_params {
            return Err(corrupt("parameter tensor size mismatch"));
        }
        s.models[w].set_params(&params);
        let velocity = r.tensor().ok_or_else(short)?;
        if velocity.len() != num_params {
            return Err(corrupt("velocity tensor size mismatch"));
        }
        s.opts[w].set_velocity(&velocity);
        let sampler = recovery::read_rng(r).ok_or_else(|| corrupt("bad sampler rng"))?;
        s.samplers[w].restore_rng(&sampler);
        let workload = recovery::read_rng(r).ok_or_else(|| corrupt("bad workload rng"))?;
        s.workload_rngs[w] = SimRng::from_state(&workload);
        s.in_flight[w] = None;
        s.pending[w] = None;
        s.computing[w] = false;
    }
    let proto = recovery::read_rng(r).ok_or_else(|| corrupt("bad protocol rng"))?;
    s.proto_rng = SimRng::from_state(&proto);
    let codec = recovery::read_rng(r).ok_or_else(|| corrupt("bad codec rng"))?;
    s.codec_rng = SimRng::from_state(&codec);
    let points = r.u64().ok_or_else(short)?;
    if points > bytes.len() as u64 / 32 {
        return Err(corrupt("history length implausible"));
    }
    s.history = History::new();
    for _ in 0..points {
        let time_s = r.f64().ok_or_else(short)?;
        let iteration = r.u64().ok_or_else(short)?;
        let loss = r.f64().ok_or_else(short)?;
        let accuracy = r.f64().ok_or_else(short)?;
        s.history.record(time_s, iteration, loss, accuracy);
    }
    // Early stopping has no snapshot of its own: replaying the recorded
    // losses reproduces its best/strike state exactly (it is a pure fold
    // over the evaluation sequence).
    if let Some(early) = &mut s.early {
        let patience = s.spec.patience.expect("early implies patience");
        *early = EarlyStopping::new(patience, 1e-3);
        for p in s.history.points() {
            let _ = early.update(p.loss);
        }
    }
    s.stop = None;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal sequential protocol: one worker at a time computes, its
    /// gradient is applied to everyone, and the next round begins.
    struct RoundRobin {
        current: usize,
    }

    impl Protocol for RoundRobin {
        type Msg = ();

        fn name(&self) -> &'static str {
            "round-robin"
        }

        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.begin_compute(self.current);
        }

        fn on_compute_done(&mut self, ctx: &mut Ctx<'_, ()>, worker: usize, _iter: u64) {
            let (_, grad) = ctx.take_gradient(worker).expect("gradient pending");
            let all: Vec<usize> = (0..ctx.num_workers()).collect();
            ctx.apply_reduced(&all, &grad, 1.0);
            ctx.finish_round(1.0 / ctx.num_workers() as f64);
            if !ctx.stopped() {
                self.current = (self.current + 1) % ctx.num_workers();
                ctx.begin_compute(self.current);
            }
        }

        fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _f: usize, _t: usize, _m: ()) {}
    }

    #[test]
    fn engine_runs_and_reduces_loss() {
        let spec = TrainSpec::smoke_test(3, 11).with_max_rounds(150);
        let result = Engine::new(spec, RoundRobin { current: 0 }).run();
        assert_eq!(result.stop_reason, StopReason::MaxRounds);
        assert_eq!(result.global_rounds, 150);
        let h = result.history.points();
        assert!(h.len() >= 2);
        assert!(
            h.last().unwrap().loss < h[0].loss,
            "loss should fall: {} -> {}",
            h[0].loss,
            h.last().unwrap().loss
        );
    }

    #[test]
    fn engine_is_deterministic() {
        let run = || {
            Engine::new(
                TrainSpec::smoke_test(3, 5).with_max_rounds(40),
                RoundRobin { current: 0 },
            )
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.history.points().len(), b.history.points().len());
        assert_eq!(a.final_loss(), b.final_loss());
        assert_eq!(a.worker_iterations, b.worker_iterations);
    }

    #[test]
    fn target_loss_stops_run() {
        let spec = TrainSpec::smoke_test(2, 3)
            .with_target_loss(100.0) // trivially satisfied at first eval
            .with_max_rounds(1000);
        let result = Engine::new(spec, RoundRobin { current: 0 }).run();
        assert_eq!(result.stop_reason, StopReason::TargetReached);
        assert!(result.global_rounds <= 10);
    }

    #[test]
    fn max_time_stops_run() {
        let spec = TrainSpec::smoke_test(2, 3)
            .with_max_time(SimDuration::from_millis(40))
            .with_max_rounds(u64::MAX / 2);
        let result = Engine::new(spec, RoundRobin { current: 0 }).run();
        assert_eq!(result.stop_reason, StopReason::MaxTime);
        assert!(result.wall_time <= SimDuration::from_millis(40));
    }

    #[test]
    fn idle_protocol_stops_immediately() {
        struct Noop;
        impl Protocol for Noop {
            type Msg = ();
            fn name(&self) -> &'static str {
                "noop"
            }
            fn on_start(&mut self, _ctx: &mut Ctx<'_, ()>) {}
            fn on_compute_done(&mut self, _c: &mut Ctx<'_, ()>, _w: usize, _i: u64) {}
            fn on_message(&mut self, _c: &mut Ctx<'_, ()>, _f: usize, _t: usize, _m: ()) {}
        }
        let result = Engine::new(TrainSpec::smoke_test(2, 0), Noop).run();
        assert_eq!(result.stop_reason, StopReason::Idle);
        assert_eq!(result.global_rounds, 0);
        assert_eq!(result.total_iterations(), 0);
    }

    #[test]
    fn replicas_stay_in_sync_under_shared_updates() {
        struct SyncCheck;
        impl Protocol for SyncCheck {
            type Msg = ();
            fn name(&self) -> &'static str {
                "sync-check"
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.begin_compute(0);
            }
            fn on_compute_done(&mut self, ctx: &mut Ctx<'_, ()>, worker: usize, _iter: u64) {
                let (_, grad) = ctx.take_gradient(worker).unwrap();
                let all: Vec<usize> = (0..ctx.num_workers()).collect();
                ctx.apply_reduced(&all, &grad, 1.0);
                let p0 = ctx.params(0);
                for w in 1..ctx.num_workers() {
                    assert!(ctx.params(w).approx_eq(&p0, 1e-6));
                }
                ctx.finish_round(1.0);
                if ctx.global_round() < 5 {
                    ctx.begin_compute(0);
                }
            }
            fn on_message(&mut self, _c: &mut Ctx<'_, ()>, _f: usize, _t: usize, _m: ()) {}
        }
        let result = Engine::new(TrainSpec::smoke_test(3, 1), SyncCheck).run();
        assert_eq!(result.global_rounds, 5);
    }

    #[test]
    fn messages_pay_link_latency() {
        struct PingPong {
            hops: u32,
        }
        impl Protocol for PingPong {
            type Msg = u32;
            fn name(&self) -> &'static str {
                "ping"
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.send(0, 1, 1000, 0);
            }
            fn on_compute_done(&mut self, _c: &mut Ctx<'_, u32>, _w: usize, _i: u64) {}
            fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _f: usize, to: usize, hop: u32) {
                self.hops = hop;
                if hop < 4 {
                    ctx.send(to, 1 - to, 1000, hop + 1);
                }
            }
        }
        let spec = TrainSpec::smoke_test(2, 0);
        let expected_latency = spec.link.transfer_time(1000) * 5;
        let result = Engine::new(spec, PingPong { hops: 0 }).run();
        assert_eq!(result.stop_reason, StopReason::Idle);
        assert_eq!(result.wall_time, expected_latency);
        assert_eq!(result.comm_bytes, 5000);
    }

    #[test]
    #[should_panic(expected = "already has an iteration in flight")]
    fn double_begin_compute_panics() {
        struct Bad;
        impl Protocol for Bad {
            type Msg = ();
            fn name(&self) -> &'static str {
                "bad"
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.begin_compute(0);
                ctx.begin_compute(0);
            }
            fn on_compute_done(&mut self, _c: &mut Ctx<'_, ()>, _w: usize, _i: u64) {}
            fn on_message(&mut self, _c: &mut Ctx<'_, ()>, _f: usize, _t: usize, _m: ()) {}
        }
        Engine::new(TrainSpec::smoke_test(1, 0), Bad).run();
    }

    #[test]
    #[should_panic(expected = "cover every worker")]
    fn spec_validates_hetero_size() {
        let spec = TrainSpec::smoke_test(3, 0).with_hetero(HeterogeneityModel::homogeneous(2));
        let _ = spec;
    }

    /// Every worker computes continuously; each completion counts a round.
    struct FreeRun;
    impl Protocol for FreeRun {
        type Msg = ();
        fn name(&self) -> &'static str {
            "free-run"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            for w in 0..ctx.num_workers() {
                ctx.begin_compute(w);
            }
        }
        fn on_compute_done(&mut self, ctx: &mut Ctx<'_, ()>, worker: usize, _iter: u64) {
            let _ = ctx.take_gradient(worker);
            ctx.finish_round(ctx.live_workers() as f64 / ctx.num_workers() as f64);
            if !ctx.stopped() {
                ctx.begin_compute(worker);
            }
        }
        fn on_message(&mut self, _c: &mut Ctx<'_, ()>, _f: usize, _t: usize, _m: ()) {}
        fn on_rejoin(&mut self, ctx: &mut Ctx<'_, ()>, worker: usize) {
            ctx.begin_compute(worker);
        }
    }

    #[test]
    fn restart_revives_the_worker_and_reports_the_fate() {
        let plan = FaultPlan::none().restart(1, 4, 30_000);
        let spec = TrainSpec::smoke_test(3, 7)
            .with_max_rounds(60)
            .with_fault_plan(plan);
        let result = Engine::new(spec, FreeRun).run();
        assert_eq!(
            result.worker_fates[1],
            WorkerFate::Restarted {
                at_iter: 4,
                rejoined: true
            }
        );
        assert!(!result.worker_fates[1].is_dead());
        assert!(
            result.worker_iterations[1] > 4,
            "the rejoined worker iterates again: {:?}",
            result.worker_iterations
        );
        assert!(
            result.worker_iterations[1] < result.worker_iterations[0],
            "the 30 ms outage costs iterations: {:?}",
            result.worker_iterations
        );
    }

    #[test]
    fn restart_past_end_of_run_is_a_death() {
        // The rejoin lands after the virtual-time budget: the worker dies
        // at 4 iterations and the fate reports the rejoin never happened.
        let plan = FaultPlan::none().restart(1, 4, 60_000_000);
        let spec = TrainSpec::smoke_test(3, 7)
            .with_max_time(SimDuration::from_millis(200))
            .with_max_rounds(u64::MAX / 2)
            .with_fault_plan(plan);
        let result = Engine::new(spec, FreeRun).run();
        assert_eq!(result.worker_iterations[1], 4);
        assert_eq!(
            result.worker_fates[1],
            WorkerFate::Restarted {
                at_iter: 4,
                rejoined: false
            }
        );
        assert!(result.worker_fates[1].is_dead());
    }

    #[test]
    fn lossy_fabric_drops_messages_and_counts_them() {
        struct Spray;
        impl Protocol for Spray {
            type Msg = u32;
            fn name(&self) -> &'static str {
                "spray"
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                for i in 0..200 {
                    ctx.send(0, 1, 100, i);
                }
            }
            fn on_compute_done(&mut self, _c: &mut Ctx<'_, u32>, _w: usize, _i: u64) {}
            fn on_message(&mut self, _c: &mut Ctx<'_, u32>, _f: usize, _t: usize, _m: u32) {}
        }
        let spec = TrainSpec::smoke_test(2, 0)
            .with_net_fault_plan(NetFaultPlan::none().with_seed(5).drop_link(0, 1, 0.5));
        let result = Engine::new(spec, Spray).run();
        assert!(
            result.messages_dropped > 50 && result.messages_dropped < 150,
            "≈half of 200 sends drop: {}",
            result.messages_dropped
        );
        assert_eq!(
            result.comm_bytes, 20_000,
            "dropped messages still bill the sender's bytes"
        );
    }

    #[test]
    fn crash_at_iter_completes_exact_count() {
        let spec = TrainSpec::smoke_test(3, 7)
            .with_max_rounds(45)
            .with_crash_at_iter(1, 4);
        let result = Engine::new(spec, FreeRun).run();
        assert_eq!(
            result.worker_iterations[1], 4,
            "crashed worker must complete exactly its crash iteration count"
        );
        assert!(result.worker_iterations[0] > 4, "survivors keep training");
        assert!(result.worker_iterations[2] > 4, "survivors keep training");
    }

    #[test]
    fn crash_at_iter_zero_never_computes() {
        let spec = TrainSpec::smoke_test(2, 3)
            .with_max_rounds(20)
            .with_crash_at_iter(0, 0);
        let result = Engine::new(spec, FreeRun).run();
        assert_eq!(result.worker_iterations[0], 0);
        assert!(result.worker_iterations[1] > 0);
    }

    #[test]
    fn hang_and_slow_stretch_virtual_time() {
        use crate::fault::FaultPlan;
        // Healthy iterations take 5 ms; worker 0 is slowed +20 ms from
        // iteration 2 and worker 1 hangs 100 ms at iteration 1, so both
        // fall well behind worker 2 in a fixed virtual-time budget.
        let plan = FaultPlan::none().slow(0, 2, 20_000).hang(1, 1, 100_000);
        let spec = TrainSpec::smoke_test(3, 5)
            .with_max_time(SimDuration::from_millis(200))
            .with_max_rounds(u64::MAX / 2)
            .with_fault_plan(plan);
        let result = Engine::new(spec, FreeRun).run();
        let iters = &result.worker_iterations;
        assert!(iters[0] < iters[2], "slowed worker lags: {iters:?}");
        assert!(iters[1] < iters[2], "hung worker lags: {iters:?}");
        assert!(iters[1] > 0, "a hung worker resumes, unlike a crash");
    }

    #[test]
    #[should_panic(expected = "fault plan names worker")]
    fn fault_plan_validates_worker_range() {
        let _ = TrainSpec::smoke_test(2, 0).with_fault_plan(FaultPlan::none().crash(5, 1));
    }
}
