//! The per-worker gradient cache (§3.3 and §6, the `WriteOp`/`ReadOp`
//! analog).
//!
//! RNA separates computation from communication: the compute track deposits
//! each finished gradient into this cache ([`GradientCache::write`]); the
//! communication track drains it when a collective fires
//! ([`GradientCache::take_contribution`]). A worker that fell behind may
//! have several gradients pending — they are locally reduced with
//! staleness-linear weights; a worker that has none contributes null.
//! Bounded staleness caps the cache depth: when full, the oldest entry is
//! overwritten (the paper: "overwrite the stale data and only keep results
//! within the bound").

use rna_tensor::{
    reduce::{staleness_weighted_average, staleness_weighted_average_into},
    ReduceOp, Tensor, TensorPool,
};

/// A bounded, staleness-aware gradient accumulator for one worker.
///
/// # Examples
///
/// ```
/// use rna_core::cache::GradientCache;
/// use rna_tensor::Tensor;
///
/// let mut cache = GradientCache::new(4, true);
/// assert!(cache.is_empty());
/// cache.write(0, Tensor::from_vec(vec![1.0]));
/// cache.write(1, Tensor::from_vec(vec![4.0]));
/// // Current round k=1: weights 1 (iter 0) and 2 (iter 1) → (1+8)/3 = 3.
/// let g = cache.take_contribution(1).unwrap();
/// assert_eq!(g.as_slice(), &[3.0]);
/// assert!(cache.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct GradientCache {
    entries: Vec<(u64, Tensor)>,
    bound: usize,
    weighted: bool,
    evicted: u64,
}

impl GradientCache {
    /// Creates a cache holding at most `bound` gradients.
    ///
    /// `weighted` selects staleness-linear local reduction (the paper's
    /// design); `false` reduces uniformly (ablation).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn new(bound: usize, weighted: bool) -> Self {
        assert!(bound > 0, "cache bound must be at least one");
        GradientCache {
            entries: Vec::new(),
            bound,
            weighted,
            evicted: 0,
        }
    }

    /// Whether no gradients are pending — the worker would contribute null.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of pending gradients.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Total entries evicted by the staleness bound since creation.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Deposits the gradient computed at local iteration `iter`. If the
    /// cache is at its bound, the oldest entry is overwritten and its
    /// tensor handed back, so a hot depositor (the process world's socket
    /// readers) can recycle the buffer instead of allocating.
    pub fn write(&mut self, iter: u64, grad: Tensor) -> Option<Tensor> {
        let evicted = if self.entries.len() == self.bound {
            self.evicted += 1;
            Some(self.entries.remove(0).1)
        } else {
            None
        };
        self.entries.push((iter, grad));
        evicted
    }

    /// Drains the cache into a single contribution for the collective at
    /// global round `k`, or `None` when empty (a null contribution).
    ///
    /// With weighting on, entries are combined by
    /// `g' = Σ [t − (k − τ) + 1]·g_t / Σ [t − (k − τ) + 1]`; otherwise they
    /// are averaged uniformly. The cache is reset to null afterwards
    /// ("the input gradients are overwritten by a null gradient so as to
    /// avoid using outdated gradients", §6).
    pub fn take_contribution(&mut self, k: u64) -> Option<Tensor> {
        if self.entries.is_empty() {
            return None;
        }
        let out = if self.weighted {
            let grads: Vec<(u64, &Tensor)> = self.entries.iter().map(|(t, g)| (*t, g)).collect();
            staleness_weighted_average(&grads, k)
        } else {
            let refs: Vec<&Tensor> = self.entries.iter().map(|(_, g)| g).collect();
            ReduceOp::Mean.reduce(&refs)
        };
        self.entries.clear();
        out
    }

    /// [`GradientCache::take_contribution`] on the pooled data path: the
    /// contribution buffer comes from `pool` and the drained entry buffers
    /// are released back to it, so a steady-state drain allocates nothing.
    ///
    /// Bit-identical to the unpooled drain — the fused `*_into` reductions
    /// preserve per-element accumulation order, and pooled buffers are
    /// zeroed on acquire.
    pub fn take_contribution_pooled(&mut self, k: u64, pool: &mut TensorPool) -> Option<Tensor> {
        if self.entries.is_empty() {
            return None;
        }
        let mut out = pool.acquire(self.entries[0].1.len());
        let ok = if self.weighted {
            staleness_weighted_average_into(&mut out, &self.entries, k)
        } else {
            ReduceOp::Mean.reduce_into(&mut out, &self.entry_tensors())
        };
        debug_assert!(ok, "non-empty cache must produce a contribution");
        for (_, g) in self.entries.drain(..) {
            pool.release(g);
        }
        Some(out)
    }

    /// The pending gradients without their iteration tags (borrowed).
    fn entry_tensors(&self) -> Vec<&Tensor> {
        self.entries.iter().map(|(_, g)| g).collect()
    }

    /// The pending entries as `(iteration, gradient)` pairs, oldest first
    /// (for checkpoints — a crash-consistent snapshot must persist the
    /// cached gradients a worker has not yet contributed).
    pub fn entries(&self) -> &[(u64, Tensor)] {
        &self.entries
    }

    /// The configured staleness bound.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Whether staleness-linear weighting is enabled.
    pub fn weighted(&self) -> bool {
        self.weighted
    }

    /// Rebuilds a cache from checkpointed state, restoring the pending
    /// entries and the eviction counter exactly.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0` or `entries.len() > bound` (an impossible
    /// state for a live cache — a corrupted checkpoint).
    pub fn from_checkpoint(
        bound: usize,
        weighted: bool,
        evicted: u64,
        entries: Vec<(u64, Tensor)>,
    ) -> Self {
        let mut cache = GradientCache::new(bound, weighted);
        assert!(entries.len() <= bound, "cache snapshot exceeds its bound");
        cache.entries = entries;
        cache.evicted = evicted;
        cache
    }

    /// The largest iteration gap among pending entries relative to round
    /// `k` (0 when empty).
    pub fn max_staleness(&self, k: u64) -> u64 {
        self.entries
            .iter()
            .map(|&(t, _)| k.saturating_sub(t))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_cache_contributes_null() {
        let mut c = GradientCache::new(2, true);
        assert!(c.take_contribution(5).is_none());
        assert_eq!(c.max_staleness(5), 0);
    }

    #[test]
    fn single_entry_passes_through() {
        let mut c = GradientCache::new(2, true);
        c.write(3, Tensor::from_vec(vec![2.5]));
        let g = c.take_contribution(3).unwrap();
        assert_eq!(g.as_slice(), &[2.5]);
        assert!(c.is_empty());
    }

    #[test]
    fn weighted_accumulation_favors_recent() {
        let mut c = GradientCache::new(4, true);
        c.write(8, Tensor::from_vec(vec![0.0]));
        c.write(9, Tensor::from_vec(vec![3.0]));
        // k=9: τ=1, weights 1 and 2 → 6/3 = 2.
        let g = c.take_contribution(9).unwrap();
        assert_eq!(g.as_slice(), &[2.0]);
    }

    #[test]
    fn unweighted_accumulation_is_uniform_mean() {
        let mut c = GradientCache::new(4, false);
        c.write(8, Tensor::from_vec(vec![0.0]));
        c.write(9, Tensor::from_vec(vec![3.0]));
        let g = c.take_contribution(9).unwrap();
        assert_eq!(g.as_slice(), &[1.5]);
    }

    #[test]
    fn bound_overwrites_oldest() {
        let mut c = GradientCache::new(2, false);
        c.write(0, Tensor::from_vec(vec![100.0]));
        c.write(1, Tensor::from_vec(vec![2.0]));
        c.write(2, Tensor::from_vec(vec![4.0]));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evicted(), 1);
        // Entry from iter 0 is gone: mean of {2, 4}.
        let g = c.take_contribution(2).unwrap();
        assert_eq!(g.as_slice(), &[3.0]);
    }

    #[test]
    fn max_staleness_tracks_oldest_entry() {
        let mut c = GradientCache::new(4, true);
        c.write(2, Tensor::from_vec(vec![0.0]));
        c.write(5, Tensor::from_vec(vec![0.0]));
        assert_eq!(c.max_staleness(6), 4);
        // A "future" gradient (from a faster peer's round) gives zero gap.
        assert_eq!(c.max_staleness(1), 0);
    }

    #[test]
    fn take_resets_to_null() {
        let mut c = GradientCache::new(2, true);
        c.write(0, Tensor::from_vec(vec![1.0]));
        let _ = c.take_contribution(0);
        assert!(c.take_contribution(1).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_bound_panics() {
        GradientCache::new(0, true);
    }

    #[test]
    fn pooled_drain_matches_unpooled_bit_exactly() {
        for weighted in [true, false] {
            let mut plain = GradientCache::new(4, weighted);
            let mut pooled = GradientCache::new(4, weighted);
            let mut pool = TensorPool::new();
            for k in 0..6u64 {
                for i in 0..3u64 {
                    let g: Tensor = (0..19)
                        .map(|j| ((k * 37 + i * 11 + j) as f32).sin())
                        .collect();
                    plain.write(k + i, g.clone());
                    pooled.write(k + i, g);
                }
                let a = plain.take_contribution(k + 2).unwrap();
                let b = pooled.take_contribution_pooled(k + 2, &mut pool).unwrap();
                assert_eq!(a.as_slice(), b.as_slice(), "weighted={weighted} k={k}");
                pool.release(b);
            }
            assert!(pool.hits() > 0, "drained entries must be recycled");
        }
    }

    proptest! {
        #[test]
        fn contribution_in_convex_hull(
            vals in proptest::collection::vec(-10.0f32..10.0, 1..6),
            weighted: bool,
        ) {
            let mut c = GradientCache::new(8, weighted);
            for (i, &v) in vals.iter().enumerate() {
                c.write(i as u64, Tensor::from_vec(vec![v]));
            }
            let g = c.take_contribution(vals.len() as u64).unwrap();
            let lo = vals.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = vals.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(g.as_slice()[0] >= lo - 1e-4);
            prop_assert!(g.as_slice()[0] <= hi + 1e-4);
        }

        #[test]
        fn len_never_exceeds_bound(
            writes in 0usize..30,
            bound in 1usize..6,
        ) {
            let mut c = GradientCache::new(bound, true);
            for i in 0..writes {
                c.write(i as u64, Tensor::zeros(1));
                prop_assert!(c.len() <= bound);
            }
            prop_assert_eq!(c.evicted() as usize, writes.saturating_sub(bound));
        }
    }
}
