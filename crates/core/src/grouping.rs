//! Hierarchical group partitioning (§4).
//!
//! Whether hierarchical synchronization is used depends on the simple
//! condition **ζ > v**, where ζ is the gap between the fastest and the
//! slowest worker's per-iteration time and v is the mean per-iteration time
//! across workers. When it holds, workers are ranked by processing time,
//! those above the mean are labeled slow, the set is split into fast/slow
//! subsets, and the procedure recurses inside each subset until ζ ≤ v
//! everywhere. Each resulting group is near-homogeneous; groups then talk
//! through the parameter server.

use rna_simnet::SimDuration;

/// The ζ > v test on a set of expected per-iteration times.
///
/// Returns `false` for empty or single-worker sets (nothing to split).
pub fn needs_split(times: &[SimDuration]) -> bool {
    if times.len() < 2 {
        return false;
    }
    let min = times.iter().min().copied().unwrap();
    let max = times.iter().max().copied().unwrap();
    let mean_ns: u64 = times.iter().map(SimDuration::as_nanos).sum::<u64>() / times.len() as u64;
    (max - min).as_nanos() > mean_ns
}

/// Recursively partitions workers into speed-homogeneous groups.
///
/// `times[i]` is worker `i`'s expected per-iteration time. Returns groups of
/// worker indices; the union of groups is exactly `0..times.len()` and every
/// group satisfies ζ ≤ v (or has a single member).
///
/// # Panics
///
/// Panics if `times` is empty.
///
/// # Examples
///
/// ```
/// use rna_core::grouping::partition_groups;
/// use rna_simnet::SimDuration;
///
/// let ms = |m| SimDuration::from_millis(m);
/// // Two clear tiers: 100ms workers and 400ms workers.
/// let groups = partition_groups(&[ms(100), ms(400), ms(100), ms(400)]);
/// assert_eq!(groups.len(), 2);
/// ```
pub fn partition_groups(times: &[SimDuration]) -> Vec<Vec<usize>> {
    assert!(!times.is_empty(), "cannot group zero workers");
    let all: Vec<usize> = (0..times.len()).collect();
    let mut groups = Vec::new();
    split_recursive(&all, times, &mut groups, 0);
    groups
}

fn split_recursive(
    members: &[usize],
    times: &[SimDuration],
    out: &mut Vec<Vec<usize>>,
    depth: u32,
) {
    let local: Vec<SimDuration> = members.iter().map(|&i| times[i]).collect();
    // Depth guard: log2(n) splits always suffice; the guard makes
    // non-termination impossible even for adversarial inputs.
    if depth > 32 || !needs_split(&local) {
        out.push(members.to_vec());
        return;
    }
    let mean_ns: u64 = local.iter().map(SimDuration::as_nanos).sum::<u64>() / local.len() as u64;
    let (fast, slow): (Vec<usize>, Vec<usize>) = members
        .iter()
        .partition(|&&i| times[i].as_nanos() <= mean_ns);
    if fast.is_empty() || slow.is_empty() {
        // All equal to the mean: cannot split further.
        out.push(members.to_vec());
        return;
    }
    split_recursive(&fast, times, out, depth + 1);
    split_recursive(&slow, times, out, depth + 1);
}

/// Maps each worker to its group index under `groups`.
///
/// # Panics
///
/// Panics if a worker id exceeds `n` or appears in no group.
pub fn group_of(groups: &[Vec<usize>], n: usize) -> Vec<usize> {
    let mut map = vec![usize::MAX; n];
    for (g, members) in groups.iter().enumerate() {
        for &w in members {
            assert!(w < n, "worker id out of range");
            map[w] = g;
        }
    }
    assert!(
        map.iter().all(|&g| g != usize::MAX),
        "every worker must belong to a group"
    );
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ms(m: u64) -> SimDuration {
        SimDuration::from_millis(m)
    }

    #[test]
    fn homogeneous_cluster_is_one_group() {
        let groups = partition_groups(&[ms(100); 8]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 8);
    }

    #[test]
    fn single_worker_is_one_group() {
        assert_eq!(partition_groups(&[ms(5)]), vec![vec![0]]);
    }

    #[test]
    fn needs_split_on_zeta_greater_than_v() {
        // ζ = 300, v = 250 → split.
        assert!(needs_split(&[ms(100), ms(400)]));
        // ζ = 50, v = 125 → no split.
        assert!(!needs_split(&[ms(100), ms(150)]));
        assert!(!needs_split(&[ms(100)]));
        assert!(!needs_split(&[]));
    }

    #[test]
    fn two_tier_cluster_splits_into_two_groups() {
        let times = [ms(100), ms(400), ms(100), ms(400), ms(110), ms(390)];
        let groups = partition_groups(&times);
        assert_eq!(groups.len(), 2);
        let map = group_of(&groups, times.len());
        assert_eq!(map[0], map[2]);
        assert_eq!(map[0], map[4]);
        assert_eq!(map[1], map[3]);
        assert_ne!(map[0], map[1]);
    }

    #[test]
    fn three_tier_cluster_recurses() {
        // K80 (280ms), 1080Ti (140ms), 2080Ti (100ms): the slow tier is far
        // from the others, so at least the K80s must be separated.
        let times = [ms(280), ms(280), ms(140), ms(140), ms(100), ms(100)];
        let groups = partition_groups(&times);
        assert!(groups.len() >= 2);
        let map = group_of(&groups, times.len());
        assert_eq!(map[0], map[1]);
        assert_ne!(map[0], map[4]);
        // Each final group passes the ζ ≤ v test.
        for g in &groups {
            let local: Vec<SimDuration> = g.iter().map(|&i| times[i]).collect();
            assert!(!needs_split(&local), "group {g:?} still heterogeneous");
        }
    }

    #[test]
    fn mixed_heterogeneity_separates_paper_groups() {
        // §8.1 "M"-style setup at a scale where ζ > v holds: group A at
        // ~30 ms per iteration, group B slowed to ~110 ms (ζ = 80 > v = 70).
        let times: Vec<SimDuration> = (0..8)
            .map(|i| if i < 4 { ms(30) } else { ms(110) })
            .collect();
        let groups = partition_groups(&times);
        let map = group_of(&groups, 8);
        assert!(map[..4].iter().all(|&g| g == map[0]));
        assert!(map[4..].iter().all(|&g| g == map[4]));
        assert_ne!(map[0], map[4]);
    }

    #[test]
    fn small_gap_relative_to_mean_stays_one_group() {
        // The same ±75 ms split on top of a 235 ms base does NOT satisfy
        // ζ > v — the condition weighs the gap against the full iteration
        // time, so mild heterogeneity keeps the flat protocol.
        let times: Vec<SimDuration> = (0..8)
            .map(|i| if i < 4 { ms(235) } else { ms(310) })
            .collect();
        assert_eq!(partition_groups(&times).len(), 1);
    }

    #[test]
    #[should_panic(expected = "zero workers")]
    fn empty_input_panics() {
        partition_groups(&[]);
    }

    #[test]
    #[should_panic(expected = "belong to a group")]
    fn group_of_requires_total_cover() {
        group_of(&[vec![0]], 2);
    }

    proptest! {
        #[test]
        fn groups_partition_workers(
            raw in proptest::collection::vec(1u64..1000, 1..40),
        ) {
            let times: Vec<SimDuration> = raw.iter().map(|&m| ms(m)).collect();
            let groups = partition_groups(&times);
            let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
            // No empty groups.
            prop_assert!(groups.iter().all(|g| !g.is_empty()));
        }

        #[test]
        fn final_groups_are_homogeneous(
            raw in proptest::collection::vec(1u64..1000, 2..40),
        ) {
            let times: Vec<SimDuration> = raw.iter().map(|&m| ms(m)).collect();
            for g in partition_groups(&times) {
                let local: Vec<SimDuration> = g.iter().map(|&i| times[i]).collect();
                // Either the stop condition held or the group hit a
                // same-mean degenerate split.
                if needs_split(&local) {
                    let mean: u64 = local.iter().map(SimDuration::as_nanos).sum::<u64>()
                        / local.len() as u64;
                    prop_assert!(
                        local.iter().all(|t| t.as_nanos() <= mean)
                            || local.iter().all(|t| t.as_nanos() > mean)
                    );
                }
            }
        }
    }
}
