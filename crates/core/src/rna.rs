//! The RNA protocol engine (§3).
//!
//! One [`GroupState`] drives randomized non-blocking AllReduce over a set of
//! member workers:
//!
//! 1. The controller samples `d` members and probes them
//!    ([`crate::probe::ProbeRound`]). A probed member replies as soon as its
//!    [`crate::cache::GradientCache`] is non-empty.
//! 2. The first accepted reply elects the **initiator**; the controller
//!    immediately forces the collective. Every member contributes its
//!    locally reduced cache content — or null if it has nothing.
//! 3. The partial AllReduce costs one trigger latency plus the ring time
//!    (plus the GPU↔CPU staging cost when the spec charges it); when it
//!    completes, all members apply the contributor-average with the
//!    learning rate scaled by the contributor count (Algorithm 2).
//!
//! Workers never block on the collective: compute continues across
//! iterations (Figure 4), bounded by `max_lead` so stragglers cannot be
//! left arbitrarily far behind.
//!
//! [`RnaProtocol`] wraps a single group spanning the whole cluster;
//! `rna-core::hier` reuses [`GroupState`] for per-group RNA.

use rna_collectives::{partial_allreduce, partial_allreduce_pooled};
use rna_simnet::trace::SpanKind;
use rna_tensor::codec;
use rna_tensor::wire::{self, Reader};
use rna_tensor::Tensor;

use crate::cache::GradientCache;
use crate::fault::ToleranceConfig;
use crate::membership::ChurnEvent;
use crate::probe::ProbeRound;
use crate::recovery::RoundJournal;
use crate::sim::{Ctx, Protocol};
use crate::RnaConfig;

/// Messages exchanged by RNA (both flat and hierarchical variants).
#[derive(Debug, Clone)]
pub enum RnaMsg {
    /// Controller → probed worker: "reply when you have gradients ready".
    Probe {
        /// Group the probe belongs to.
        group: usize,
        /// Round identifier (stale replies are expired).
        round: u64,
    },
    /// Probed worker → controller: "my gradients are ready".
    ProbeReply {
        /// Group the reply belongs to.
        group: usize,
        /// Round identifier from the probe.
        round: u64,
        /// The replying worker.
        worker: usize,
    },
    /// Controller self-timer: re-probe if the election round is still
    /// winnerless (a dropped probe or reply must not wedge it). Armed only
    /// when the fabric injects network faults.
    ProbeRetry {
        /// Group the retry belongs to.
        group: usize,
        /// Round the timer was armed for (stale timers are ignored).
        round: u64,
        /// Probe-issue epoch the timer was armed for — a resample from any
        /// other path (e.g. a crash) bumps the epoch, expiring this timer.
        attempt: u64,
    },
    /// Self-scheduled completion of a group's partial AllReduce.
    ReduceDone {
        /// Group whose collective finished.
        group: usize,
        /// Round that finished.
        round: u64,
    },
    /// Self-scheduled completion of a hierarchical PS push-pull +
    /// intra-group broadcast, carrying the blended parameters.
    PsDone {
        /// Group whose exchange finished.
        group: usize,
        /// Blended parameters pulled from the server.
        blended: Tensor,
    },
    /// Warm-standby self-timer: the active controller's lease expired, so
    /// the standby takes over under the next term. Scheduled when a
    /// [`crate::fault::FaultPlan::crash_controller`] fault fires; ignored
    /// unless the controller is actually down and the term is the expected
    /// successor (stale timers are harmless).
    StandbyTakeover {
        /// The term the standby claims (must be current term + 1).
        term: u64,
    },
}

/// Per-group RNA state machine. `pub` so the hierarchical protocol can
/// drive several groups; typical users go through [`RnaProtocol`].
#[derive(Debug)]
pub struct GroupState {
    /// Group id (index into the hierarchical group list; 0 for flat RNA).
    pub id: usize,
    /// Global worker ids belonging to this group.
    pub members: Vec<usize>,
    caches: Vec<GradientCache>,
    pending_reply: Vec<Option<u64>>,
    probe: Option<ProbeRound>,
    round: u64,
    reducing: bool,
    paused: Vec<bool>,
    live: Vec<bool>,
    in_flight: Option<ReduceOutcome>,
    deferred: Option<usize>,
    initiator_counts: Vec<u64>,
    last_initiator: Option<usize>,
    probe_epoch: u64,
    retry_backoff_us: u64,
    /// Checkpoint quiesce in progress: members finishing an iteration are
    /// paused instead of continuing, until every live member is idle and
    /// the checkpoint can be cut.
    quiescing: bool,
    /// Per-member error-feedback residuals for lossy wire codecs: what the
    /// last encode dropped, re-added to the next contribution so the
    /// quantization error telescopes instead of accumulating. Allocated
    /// lazily on the first lossy encode (always empty under `Lossless`).
    residuals: Vec<Option<Tensor>>,
    /// Reusable encode scratch so steady-state lossy rounds do not
    /// allocate a fresh frame buffer.
    codec_buf: Vec<u8>,
    /// `(worker, local)` pairs sorted by worker id: the inverse of
    /// `members`, so routing an event to its local slot is a binary search
    /// instead of a linear scan (which made event handling O(group²) per
    /// round at 100k workers). Built once in `new` — membership changes
    /// always construct a fresh `GroupState`.
    member_slots: Vec<(u32, u32)>,
}

/// A finished collective waiting to be applied: the reduced gradient, how
/// many members contributed, and which members were reachable from the
/// initiator (partitioned members are excluded from the apply — they catch
/// up through their staleness-weighted caches on heal).
#[derive(Debug)]
struct ReduceOutcome {
    reduced: Tensor,
    contributors: usize,
    applied: Vec<usize>,
}

impl GroupState {
    /// Creates the state machine for `members` under `config`.
    ///
    /// A `config.probes` larger than the group is not an error: probe
    /// counts are clamped to the group size, so small groups simply probe
    /// everyone.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(id: usize, members: Vec<usize>, config: &RnaConfig) -> Self {
        assert!(!members.is_empty(), "group needs at least one member");
        let n = members.len();
        let mut member_slots: Vec<(u32, u32)> = members
            .iter()
            .enumerate()
            .map(|(local, &w)| (w as u32, local as u32))
            .collect();
        member_slots.sort_unstable();
        GroupState {
            id,
            members,
            caches: (0..n)
                .map(|_| GradientCache::new(config.staleness_bound, config.weighted_accumulation))
                .collect(),
            pending_reply: vec![None; n],
            probe: None,
            round: 0,
            reducing: false,
            paused: vec![false; n],
            live: vec![true; n],
            in_flight: None,
            deferred: None,
            initiator_counts: vec![0; n],
            last_initiator: None,
            probe_epoch: 0,
            retry_backoff_us: 0,
            quiescing: false,
            residuals: (0..n).map(|_| None).collect(),
            codec_buf: Vec::new(),
            member_slots,
        }
    }

    /// The group's current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// How many times each member has been elected initiator.
    pub fn initiator_counts(&self) -> &[u64] {
        &self.initiator_counts
    }

    /// The member elected initiator in the most recent round, if any.
    pub fn last_initiator(&self) -> Option<usize> {
        self.last_initiator
    }

    fn member_index(&self, worker: usize) -> Option<usize> {
        let w = u32::try_from(worker).ok()?;
        let i = self
            .member_slots
            .binary_search_by_key(&w, |&(worker, _)| worker)
            .ok()?;
        let local = self.member_slots[i].1 as usize;
        debug_assert_eq!(self.members[local], worker);
        Some(local)
    }

    /// Issues this round's probes (power-of-`d`-choices over the group's
    /// *live* members — crashed workers are never probed).
    pub fn start_probe_round(&mut self, ctx: &mut Ctx<'_, RnaMsg>, config: &RnaConfig) {
        self.retry_backoff_us = config.probe_retry_us;
        self.issue_probes(ctx, config);
    }

    /// Samples and sends one batch of probes, bumping the probe epoch (so
    /// any retry timer armed for an earlier batch expires) and arming a
    /// fresh retry timer when the fabric is faulty.
    fn issue_probes(&mut self, ctx: &mut Ctx<'_, RnaMsg>, config: &RnaConfig) {
        let live: Vec<usize> = (0..self.members.len()).filter(|&l| self.live[l]).collect();
        if live.is_empty() {
            // The whole group died; nothing left to coordinate.
            self.probe = None;
            return;
        }
        let d = config.probes.min(live.len());
        let picks = ctx.rng().choose_distinct(live.len(), d);
        let probed: Vec<usize> = picks.into_iter().map(|i| live[i]).collect();
        let round = ProbeRound::from_probed(self.round, probed);
        let ctrl = ctx.controller_id();
        for &local in round.probed() {
            ctx.send(
                ctrl,
                self.members[local],
                config.probe_bytes,
                RnaMsg::Probe {
                    group: self.id,
                    round: self.round,
                },
            );
        }
        self.probe = Some(round);
        self.probe_epoch += 1;
        if ctx.net_faults_enabled() {
            // A dropped probe or reply would otherwise wedge the election
            // forever: the controller only reacts to messages, and none
            // would come. On a reliable fabric the timer is pointless (and
            // arming it would perturb event-for-event determinism of
            // existing runs), so it is gated on faults being present.
            ctx.send_after(
                ctx.controller_id(),
                rna_simnet::SimDuration::from_micros(self.retry_backoff_us),
                RnaMsg::ProbeRetry {
                    group: self.id,
                    round: self.round,
                    attempt: self.probe_epoch,
                },
            );
        }
    }

    /// A probe-retry timer fired: if the election round it was armed for
    /// is still the current one, still winnerless, and no other path has
    /// re-probed since (same epoch), resample with doubled backoff.
    pub fn handle_probe_retry(
        &mut self,
        ctx: &mut Ctx<'_, RnaMsg>,
        config: &RnaConfig,
        round: u64,
        attempt: u64,
    ) {
        if round != self.round || self.reducing || ctx.stopped() {
            return;
        }
        if attempt != self.probe_epoch {
            return;
        }
        let Some(probe) = &self.probe else {
            return;
        };
        if probe.winner().is_some() {
            return;
        }
        ctx.note_probe_retry();
        self.retry_backoff_us = self
            .retry_backoff_us
            .saturating_mul(2)
            .min(crate::fault::PROBE_BACKOFF_CAP_US);
        self.issue_probes(ctx, config);
    }

    /// A member crashed: remove it from election and — if every probed
    /// member of the in-flight probe round is now dead — resample
    /// immediately so the round cannot stall.
    pub fn handle_crash(&mut self, ctx: &mut Ctx<'_, RnaMsg>, config: &RnaConfig, worker: usize) {
        let Some(local) = self.member_index(worker) else {
            return;
        };
        self.live[local] = false;
        self.pending_reply[local] = None;
        self.caches[local] =
            GradientCache::new(config.staleness_bound, config.weighted_accumulation);
        if self.reducing {
            return;
        }
        let stalled = self.probe.as_ref().is_some_and(|p| {
            p.winner().is_none() && crate::fault::probe_round_stalled(p.probed(), &self.live)
        });
        if stalled {
            self.start_probe_round(ctx, config);
        }
    }

    /// A probe arrived at `worker`: reply immediately if gradients are
    /// ready, otherwise remember the probe.
    pub fn handle_probe(
        &mut self,
        ctx: &mut Ctx<'_, RnaMsg>,
        config: &RnaConfig,
        worker: usize,
        round: u64,
    ) {
        let Some(local) = self.member_index(worker) else {
            return;
        };
        if !self.caches[local].is_empty() {
            self.send_reply(ctx, config, worker, round);
        } else {
            self.pending_reply[local] = Some(round);
        }
    }

    fn send_reply(
        &mut self,
        ctx: &mut Ctx<'_, RnaMsg>,
        config: &RnaConfig,
        worker: usize,
        round: u64,
    ) {
        let ctrl = ctx.controller_id();
        ctx.send(
            worker,
            ctrl,
            config.probe_bytes,
            RnaMsg::ProbeReply {
                group: self.id,
                round,
                worker,
            },
        );
    }

    /// A member finished a local iteration: cache its gradient, answer any
    /// pending probe, and keep computing unless the lead bound is hit.
    pub fn handle_compute_done(
        &mut self,
        ctx: &mut Ctx<'_, RnaMsg>,
        config: &RnaConfig,
        worker: usize,
        iter: u64,
    ) {
        let Some(local) = self.member_index(worker) else {
            return;
        };
        if let Some((_, grad)) = ctx.take_gradient(worker) {
            self.caches[local].write(iter, grad);
        }
        if let Some(round) = self.pending_reply[local].take() {
            self.send_reply(ctx, config, worker, round);
        }
        self.maybe_continue(ctx, config, local);
    }

    /// Starts the member's next iteration unless it is too far ahead of the
    /// group round (bounded lead), a checkpoint quiesce is draining the
    /// group, or the run has stopped.
    fn maybe_continue(&mut self, ctx: &mut Ctx<'_, RnaMsg>, config: &RnaConfig, local: usize) {
        let worker = self.members[local];
        if ctx.stopped() || ctx.is_computing(worker) || !self.live[local] {
            return;
        }
        if self.quiescing || ctx.local_iter(worker).saturating_sub(self.round) >= config.max_lead {
            self.paused[local] = true;
            ctx.set_span(worker, SpanKind::Wait);
        } else {
            self.paused[local] = false;
            ctx.begin_compute(worker);
        }
    }

    /// A probe reply reached the controller. Returns `true` when the reply
    /// elected an initiator and the collective was launched.
    pub fn handle_reply(
        &mut self,
        ctx: &mut Ctx<'_, RnaMsg>,
        config: &RnaConfig,
        worker: usize,
        round: u64,
    ) -> bool {
        let Some(local) = self.member_index(worker) else {
            return false;
        };
        if self.reducing {
            return false;
        }
        let Some(probe) = &mut self.probe else {
            return false;
        };
        if !probe.offer_reply(local, round) {
            return false;
        }
        self.initiator_counts[local] += 1;
        self.last_initiator = Some(worker);
        self.launch_reduce(ctx, config);
        true
    }

    /// Forces the partial AllReduce: snapshot contributions, compute the
    /// contributor average, and schedule completion after the collective's
    /// virtual cost.
    ///
    /// Members the initiator cannot reach (partition or flap) neither
    /// contribute nor receive the result: their contribution is a null —
    /// the paper-consistent treatment of a lost contribution — and their
    /// caches keep accumulating so they reconcile, staleness-weighted, on
    /// heal.
    fn launch_reduce(&mut self, ctx: &mut Ctx<'_, RnaMsg>, config: &RnaConfig) {
        self.reducing = true;
        let k = self.round;
        let initiator = self
            .last_initiator
            .expect("launch_reduce is only reached from an accepted reply");
        let reachable: Vec<bool> = self
            .members
            .iter()
            .map(|&m| m == initiator || ctx.link_up(initiator, m))
            .collect();
        if reachable.iter().any(|&r| !r) {
            ctx.note_partition_round();
        }
        // Everything from the cache drain to the reduced output runs on the
        // pooled, fused data path (bit-identical to the naive one); the
        // debug alloc delta proves steady-state rounds allocate nothing.
        let allocs_before = rna_tensor::alloc::count();
        let caches = &mut self.caches;
        let mut contributions: Vec<Option<Tensor>> = if config.pooled {
            caches
                .iter_mut()
                .zip(&reachable)
                .map(|(c, &r)| {
                    if r {
                        c.take_contribution_pooled(k, ctx.pool_mut())
                    } else {
                        None
                    }
                })
                .collect()
        } else {
            caches
                .iter_mut()
                .zip(&reachable)
                .map(|(c, &r)| if r { c.take_contribution(k) } else { None })
                .collect()
        };
        let codec = config.compression;
        if !codec.is_lossless() {
            // Lossy wire: each contribution crosses the network as
            // decode(encode(grad + residual)); the dropped remainder stays
            // behind in the member's residual (error feedback), so the
            // reduce below sees exactly what a receiver could reconstruct.
            for (local, slot) in contributions.iter_mut().enumerate() {
                let Some(grad) = slot.as_mut() else { continue };
                let residual =
                    self.residuals[local].get_or_insert_with(|| Tensor::zeros(grad.len()));
                let rng = ctx.codec_rng();
                let mut draw = || rng.uniform_u64(0..1 << 32) as u32;
                let threads = codec::wire_threads(grad.len());
                let (_, err) = codec::encode_with_feedback_mt(
                    codec,
                    grad,
                    residual,
                    &mut self.codec_buf,
                    &mut draw,
                    threads,
                );
                ctx.note_codec_error(err);
            }
        }
        let refs: Vec<Option<&Tensor>> = contributions.iter().map(Option::as_ref).collect();
        let outcome = if config.pooled {
            partial_allreduce_pooled(&refs, ctx.pool_mut())
        } else {
            partial_allreduce(&refs)
        }
        .expect("initiator has a ready gradient, so the round cannot be empty");
        if config.pooled {
            for g in contributions.into_iter().flatten() {
                ctx.pool_release(g);
            }
        }
        ctx.note_datapath_allocs(rna_tensor::alloc::count() - allocs_before);
        let applied: Vec<usize> = self
            .members
            .iter()
            .zip(&reachable)
            .filter(|(_, &r)| r)
            .map(|(&m, _)| m)
            .collect();
        self.in_flight = Some(ReduceOutcome {
            reduced: outcome.reduced,
            contributors: outcome.num_contributors,
            applied,
        });
        let n = self.members.len();
        let cost = ctx.cost();
        let bytes = ctx.grad_bytes();
        // Wire charging, billed at the profile's gradient size. Lossless
        // takes the legacy (unframed) formulas verbatim so pre-codec runs
        // replay bit-identically; lossy codecs price each ring message as
        // one encoded chunk frame (header + codec payload).
        let legacy_wire = cost.ring_bytes_per_worker(n, bytes) * n as u64;
        let (ring_time, wire) = if codec.is_lossless() {
            (cost.ring_allreduce(n, bytes), legacy_wire)
        } else {
            let elems = rna_tensor::chunks::max_chunk_len((bytes / 4) as usize, n);
            let frame = codec.frame_bytes(elems);
            (
                cost.ring_allreduce_framed(n, frame),
                cost.ring_bytes_per_worker_framed(n, frame) * n as u64,
            )
        };
        let duration = cost.link().transfer_time(64) // trigger broadcast
            + ring_time
            + ctx.transfer_overhead();
        ctx.charge_bytes(wire);
        ctx.note_wire_bytes(wire, legacy_wire);
        for &w in &self.members {
            if !ctx.is_computing(w) {
                ctx.set_span(w, SpanKind::Communicate);
            }
        }
        ctx.send_after(
            ctx.controller_id(),
            duration,
            RnaMsg::ReduceDone {
                group: self.id,
                round: k,
            },
        );
    }

    /// Claims the finished collective's result without applying it —
    /// the hierarchical protocol routes it through the parameter server
    /// instead. Returns `(reduced, contributors, applied_members)`, or
    /// `None` if the completion was stale. `applied_members` are the
    /// global ids the result should be applied to (members the initiator
    /// could not reach at launch time are excluded).
    pub fn take_reduce_result(&mut self, round: u64) -> Option<(Tensor, usize, Vec<usize>)> {
        if round != self.round || !self.reducing {
            return None;
        }
        self.in_flight
            .take()
            .map(|o| (o.reduced, o.contributors, o.applied))
    }

    /// Applies a reduced gradient to `targets` with the configured
    /// learning-rate scaling.
    pub fn apply_reduce(
        &mut self,
        ctx: &mut Ctx<'_, RnaMsg>,
        config: &RnaConfig,
        reduced: &Tensor,
        contributors: usize,
        targets: &[usize],
    ) {
        let lr_scale = if config.dynamic_lr_scaling {
            contributors as f32
        } else {
            1.0
        };
        ctx.apply_reduced(targets, reduced, lr_scale);
    }

    /// The collective finished: apply the update to every reachable
    /// member. Returns the contributor count, or `None` if the completion
    /// was stale.
    ///
    /// The caller is responsible for round bookkeeping
    /// ([`GroupState::advance_round`]) — the hierarchical protocol inserts
    /// a PS exchange in between.
    pub fn handle_reduce_done(
        &mut self,
        ctx: &mut Ctx<'_, RnaMsg>,
        config: &RnaConfig,
        round: u64,
    ) -> Option<usize> {
        let (reduced, contributors, applied) = self.take_reduce_result(round)?;
        let allocs_before = rna_tensor::alloc::count();
        self.apply_reduce(ctx, config, &reduced, contributors, &applied);
        if config.pooled {
            ctx.pool_release(reduced);
        }
        ctx.note_datapath_allocs(rna_tensor::alloc::count() - allocs_before);
        Some(contributors)
    }

    /// A live member of the group, preferring the most recent initiator —
    /// the node the hierarchical protocol treats as the group's
    /// representative toward the parameter server.
    pub fn representative(&self) -> Option<usize> {
        if let Some(w) = self.last_initiator {
            if let Some(l) = self.member_index(w) {
                if self.live[l] {
                    return Some(w);
                }
            }
        }
        (0..self.members.len())
            .find(|&l| self.live[l])
            .map(|l| self.members[l])
    }

    /// A crashed member rejoined: re-admit it to the liveness view with a
    /// fresh cache, seed it with a live peer's current parameters (the
    /// "pull the current model" half of a restart), and restart its
    /// compute pipeline. If the whole group had died, this also revives
    /// the election loop.
    pub fn handle_rejoin(&mut self, ctx: &mut Ctx<'_, RnaMsg>, config: &RnaConfig, worker: usize) {
        let Some(local) = self.member_index(worker) else {
            return;
        };
        self.live[local] = true;
        self.paused[local] = false;
        self.pending_reply[local] = None;
        self.caches[local] =
            GradientCache::new(config.staleness_bound, config.weighted_accumulation);
        if let Some(donor) = (0..self.members.len())
            .find(|&l| l != local && self.live[l])
            .map(|l| self.members[l])
        {
            let params = ctx.params(donor);
            ctx.set_params(worker, &params);
        }
        let election_dead = self.probe.is_none() && !self.reducing;
        if election_dead && !ctx.stopped() {
            self.start_probe_round(ctx, config);
        }
        self.maybe_continue(ctx, config, local);
    }

    /// Defers round completion: the hierarchical protocol calls this when a
    /// PS exchange must land before the round can advance. While deferred,
    /// `reducing` stays set, so no new collective can trigger.
    pub fn advance_round_deferred(&mut self, contributors: usize) {
        self.deferred = Some(contributors);
    }

    /// Completes a previously deferred round (after the PS broadcast).
    pub fn complete_deferred_round(&mut self, ctx: &mut Ctx<'_, RnaMsg>, config: &RnaConfig) {
        if let Some(contributors) = self.deferred.take() {
            self.advance_round(ctx, config, contributors);
        }
    }

    /// Completes the round: bump counters, resume paused members, and (if
    /// the run continues) start the next probe round.
    pub fn advance_round(
        &mut self,
        ctx: &mut Ctx<'_, RnaMsg>,
        config: &RnaConfig,
        contributors: usize,
    ) {
        self.complete_round(ctx, contributors);
        self.resume_paused(ctx, config);
        if !ctx.stopped() {
            self.start_probe_round(ctx, config);
        }
    }

    /// The bookkeeping half of [`GroupState::advance_round`]: clears the
    /// reduce latch, bumps the round, and records participation. Callers
    /// that need to intervene before the next probe round (a checkpoint
    /// quiesce, a controller-crash fault) follow up with
    /// [`GroupState::resume_paused`] and [`GroupState::start_probe_round`]
    /// themselves.
    pub fn complete_round(&mut self, ctx: &mut Ctx<'_, RnaMsg>, contributors: usize) {
        self.reducing = false;
        self.round += 1;
        ctx.finish_round(contributors as f64 / self.members.len() as f64);
    }

    /// Gives every paused member a chance to continue (in member order —
    /// the order matters for event-queue determinism, so the checkpoint
    /// resume path uses exactly this loop too).
    pub fn resume_paused(&mut self, ctx: &mut Ctx<'_, RnaMsg>, config: &RnaConfig) {
        for local in 0..self.members.len() {
            if self.paused[local] {
                self.maybe_continue(ctx, config, local);
            }
        }
    }

    /// Starts draining the group for a crash-consistent checkpoint:
    /// members finishing their in-flight iteration are paused instead of
    /// continuing. Cut the checkpoint once [`GroupState::all_idle`].
    pub fn begin_quiesce(&mut self) {
        self.quiescing = true;
        // Members already lead-bound-paused stay paused through the cut.
        for local in 0..self.members.len() {
            if self.live[local] {
                self.paused[local] = true;
            }
        }
    }

    /// Whether a checkpoint quiesce is draining this group.
    pub fn quiescing(&self) -> bool {
        self.quiescing
    }

    /// Ends the quiesce (after the checkpoint was written).
    pub fn end_quiesce(&mut self) {
        self.quiescing = false;
    }

    /// Whether every live member is idle (no iteration in flight) — the
    /// condition for cutting a crash-consistent checkpoint.
    pub fn all_idle(&self, ctx: &Ctx<'_, RnaMsg>) -> bool {
        self.members
            .iter()
            .enumerate()
            .all(|(local, &w)| !self.live[local] || !ctx.is_computing(w))
    }

    /// Marks a planned joiner dormant before the run starts: not live, not
    /// paused, never probed. Unlike a crash there is no stall to resample —
    /// the member never held a probe slot. Admission later goes through
    /// [`GroupState::handle_rejoin`], which is exactly a join: fresh cache,
    /// parameters seeded from a live peer, compute pipeline started.
    pub fn set_dormant(&mut self, worker: usize) {
        if let Some(local) = self.member_index(worker) {
            self.live[local] = false;
            self.paused[local] = false;
            self.pending_reply[local] = None;
        }
    }

    /// Removes a member from the active roster at a round edge (planned
    /// retirement or eviction). The round that just completed already
    /// merged the member's final contribution, so this is graceful: the
    /// member simply stops being probed, elected, or applied to. Its cache
    /// is reset — anything computed toward the *next* round is discarded,
    /// which is the definition of the departure edge.
    pub fn depart(&mut self, config: &RnaConfig, worker: usize) {
        if let Some(local) = self.member_index(worker) {
            self.live[local] = false;
            self.paused[local] = false;
            self.pending_reply[local] = None;
            self.caches[local] =
                GradientCache::new(config.staleness_bound, config.weighted_accumulation);
        }
    }

    /// Whether the member is live (joined, not crashed, not departed).
    pub fn is_live(&self, worker: usize) -> bool {
        self.member_index(worker)
            .is_some_and(|local| self.live[local])
    }

    /// Global ids of the group's live members.
    pub fn live_members(&self) -> Vec<usize> {
        self.members
            .iter()
            .enumerate()
            .filter(|&(local, _)| self.live[local])
            .map(|(_, &w)| w)
            .collect()
    }

    /// Steals the member's gradient cache for a topology swap, leaving a
    /// fresh one behind. The swap transplants caches into the new group
    /// layout so accumulated-but-unreduced work survives regrouping.
    pub fn take_cache(&mut self, config: &RnaConfig, worker: usize) -> Option<GradientCache> {
        self.member_index(worker).map(|local| {
            std::mem::replace(
                &mut self.caches[local],
                GradientCache::new(config.staleness_bound, config.weighted_accumulation),
            )
        })
    }

    /// Installs a transplanted gradient cache for the member (the other
    /// half of [`GroupState::take_cache`]).
    pub fn adopt_cache(&mut self, worker: usize, cache: GradientCache) {
        if let Some(local) = self.member_index(worker) {
            self.caches[local] = cache;
        }
    }

    /// Whether the group is drained enough for an atomic topology swap:
    /// no collective in flight, no deferred round, and every live member
    /// idle. Same discipline as the checkpoint quiesce, extended to the
    /// reduce latch (the checkpoint path only reaches its cut from a round
    /// edge, where `reducing` is clear by construction; regrouping polls
    /// from arbitrary points).
    pub fn idle_for_swap(&self, ctx: &Ctx<'_, RnaMsg>) -> bool {
        !self.reducing && self.in_flight.is_none() && self.deferred.is_none() && self.all_idle(ctx)
    }

    /// Kicks every idle live member's compute pipeline — the post-swap
    /// counterpart of [`GroupState::resume_paused`], for freshly rebuilt
    /// groups whose pause flags did not survive the rebuild.
    pub fn resume_all(&mut self, ctx: &mut Ctx<'_, RnaMsg>, config: &RnaConfig) {
        for local in 0..self.members.len() {
            if self.live[local] {
                self.maybe_continue(ctx, config, local);
            }
        }
    }

    /// Claims a deferred round completion without advancing the round —
    /// callers that must interleave work at the round edge (churn
    /// processing, a regroup check) take the contributor count and drive
    /// [`GroupState::complete_round`] themselves.
    pub fn take_deferred(&mut self) -> Option<usize> {
        self.deferred.take()
    }

    /// Resets the controller-side election state after a standby takeover:
    /// the new controller trusts only the journal-recovered `round`, holds
    /// no probe round or in-flight collective, and bumps the probe epoch
    /// so any timer armed by the dead controller expires.
    pub fn recover_for_takeover(&mut self, round: u64) {
        self.round = round;
        self.probe = None;
        self.reducing = false;
        self.in_flight = None;
        self.deferred = None;
        self.probe_epoch += 1;
    }

    /// Serializes the group's quiesced state into a checkpoint blob:
    /// liveness and pause flags, pending probe replies, initiator
    /// bookkeeping, and every member's gradient cache (bound, weighting,
    /// eviction counter, and exact pending entries).
    ///
    /// # Panics
    ///
    /// Debug-asserts the group is quiesced (no collective in flight).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        debug_assert!(!self.reducing && self.in_flight.is_none() && self.deferred.is_none());
        wire::put_u64(out, self.round);
        wire::put_u64(out, self.probe_epoch);
        wire::put_u64(out, self.retry_backoff_us);
        wire::put_u64(out, self.members.len() as u64);
        match self.last_initiator {
            Some(w) => {
                wire::put_u32(out, 1);
                wire::put_u64(out, w as u64);
            }
            None => wire::put_u32(out, 0),
        }
        for local in 0..self.members.len() {
            wire::put_u32(out, u32::from(self.live[local]));
            wire::put_u32(out, u32::from(self.paused[local]));
            wire::put_u64(out, self.initiator_counts[local]);
            match self.pending_reply[local] {
                Some(r) => {
                    wire::put_u32(out, 1);
                    wire::put_u64(out, r);
                }
                None => wire::put_u32(out, 0),
            }
            let cache = &self.caches[local];
            wire::put_u64(out, cache.bound() as u64);
            wire::put_u32(out, u32::from(cache.weighted()));
            wire::put_u64(out, cache.evicted());
            wire::put_u64(out, cache.entries().len() as u64);
            for (iter, grad) in cache.entries() {
                wire::put_u64(out, *iter);
                wire::put_tensor(out, grad);
            }
        }
        // Error-feedback residuals: without them a lossy-codec resume
        // would re-drop what the pre-crash run already owed its members.
        for local in 0..self.members.len() {
            match &self.residuals[local] {
                Some(t) => {
                    wire::put_u32(out, 1);
                    wire::put_tensor(out, t);
                }
                None => wire::put_u32(out, 0),
            }
        }
    }

    /// Restores state written by [`GroupState::encode_into`]. Returns
    /// `false` on any mismatch (member count, malformed cache) instead of
    /// panicking — the caller surfaces a typed corruption error.
    pub fn restore_from(&mut self, r: &mut Reader<'_>) -> bool {
        let Some(round) = r.u64() else { return false };
        let Some(probe_epoch) = r.u64() else {
            return false;
        };
        let Some(retry_backoff_us) = r.u64() else {
            return false;
        };
        match r.u64() {
            Some(n) if n as usize == self.members.len() => {}
            _ => return false,
        }
        let last_initiator = match r.u32() {
            Some(0) => None,
            Some(1) => match r.u64() {
                Some(w) => Some(w as usize),
                None => return false,
            },
            _ => return false,
        };
        let n = self.members.len();
        let mut live = vec![true; n];
        let mut paused = vec![false; n];
        let mut initiator_counts = vec![0u64; n];
        let mut pending_reply = vec![None; n];
        let mut caches = Vec::with_capacity(n);
        for local in 0..n {
            live[local] = match r.u32() {
                Some(v) => v != 0,
                None => return false,
            };
            paused[local] = match r.u32() {
                Some(v) => v != 0,
                None => return false,
            };
            initiator_counts[local] = match r.u64() {
                Some(v) => v,
                None => return false,
            };
            pending_reply[local] = match r.u32() {
                Some(0) => None,
                Some(1) => match r.u64() {
                    Some(v) => Some(v),
                    None => return false,
                },
                _ => return false,
            };
            let Some(bound) = r.u64() else { return false };
            let Some(weighted) = r.u32() else {
                return false;
            };
            let Some(evicted) = r.u64() else { return false };
            let Some(count) = r.u64() else { return false };
            if bound == 0 || count > bound || count > r.remaining() as u64 / 8 {
                return false;
            }
            let mut entries = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let Some(iter) = r.u64() else { return false };
                let Some(grad) = r.tensor() else { return false };
                entries.push((iter, grad));
            }
            caches.push(GradientCache::from_checkpoint(
                bound as usize,
                weighted != 0,
                evicted,
                entries,
            ));
        }
        let mut residuals: Vec<Option<Tensor>> = Vec::with_capacity(n);
        for _ in 0..n {
            residuals.push(match r.u32() {
                Some(0) => None,
                Some(1) => match r.tensor() {
                    Some(t) => Some(t),
                    None => return false,
                },
                _ => return false,
            });
        }
        self.round = round;
        self.probe_epoch = probe_epoch;
        self.retry_backoff_us = retry_backoff_us;
        self.last_initiator = last_initiator;
        self.live = live;
        self.paused = paused;
        self.initiator_counts = initiator_counts;
        self.pending_reply = pending_reply;
        self.caches = caches;
        self.residuals = residuals;
        self.probe = None;
        self.reducing = false;
        self.in_flight = None;
        self.deferred = None;
        self.quiescing = false;
        true
    }
}

/// Flat RNA: one group spanning the entire cluster.
///
/// # Examples
///
/// ```
/// use rna_core::rna::RnaProtocol;
/// use rna_core::sim::{Engine, TrainSpec};
/// use rna_core::RnaConfig;
///
/// let result = Engine::new(
///     TrainSpec::smoke_test(4, 1),
///     RnaProtocol::new(4, RnaConfig::default(), 99),
/// )
/// .run();
/// assert!(result.global_rounds > 0);
/// ```
#[derive(Debug)]
pub struct RnaProtocol {
    config: RnaConfig,
    group: GroupState,
    tolerance: ToleranceConfig,
    /// Controller term: bumped by every standby takeover. Round ids are
    /// implicitly epoch-guarded — the takeover bumps the probe epoch, so
    /// probe replies addressed to the dead incarnation expire harmlessly.
    term: u64,
    /// The active controller is down; controller-addressed messages are
    /// dropped until the warm standby's lease timer fires.
    ctrl_down: bool,
    /// Completed probe rounds, replayed by the standby to recover the
    /// round counter (and serialized into every checkpoint).
    journal: RoundJournal,
    /// Index into [`crate::fault::FaultPlan::controller_crashes`] of the
    /// next controller crash not yet executed.
    crash_idx: usize,
    /// Workers that left via the churn plan (retired or evicted). Their
    /// engine may still deliver an in-flight `ComputeDone` after the
    /// departure edge; the gradient is discarded at the protocol level.
    departed: Vec<bool>,
}

impl RnaProtocol {
    /// Creates flat RNA over `n` workers. `_seed` is kept for API
    /// compatibility with experiment configs; randomness flows from the
    /// engine's protocol RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, config: RnaConfig, _seed: u64) -> Self {
        let group = GroupState::new(0, (0..n).collect(), &config);
        RnaProtocol {
            config,
            group,
            tolerance: ToleranceConfig::default(),
            term: 0,
            ctrl_down: false,
            journal: RoundJournal::new(),
            crash_idx: 0,
            departed: vec![false; n],
        }
    }

    /// Overrides the control-plane tolerance knobs (lease window, probe
    /// backoff). The config was validated at its own construction.
    pub fn with_tolerance(mut self, tolerance: ToleranceConfig) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// The underlying group state (for tests and diagnostics).
    pub fn group(&self) -> &GroupState {
        &self.group
    }

    /// The current controller term (0 until the first failover).
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Starts the next probe round — unless the fault plan kills the
    /// controller at this round, in which case the controller goes dark
    /// and the warm standby's lease timer is armed instead.
    fn start_next_round(&mut self, ctx: &mut Ctx<'_, RnaMsg>) {
        if ctx.stopped() {
            return;
        }
        if ctx.fault_plan().controller_crashes().get(self.crash_idx) == Some(&self.group.round()) {
            self.crash_idx += 1;
            self.ctrl_down = true;
            ctx.send_after(
                ctx.controller_id(),
                rna_simnet::SimDuration::from_micros(self.tolerance.liveness_timeout_us),
                RnaMsg::StandbyTakeover {
                    term: self.term + 1,
                },
            );
            return;
        }
        self.group.start_probe_round(ctx, &self.config);
    }

    /// The warm standby's lease timer fired: bump the term, recover the
    /// round counter from the journal, reset the election state (probe
    /// epoch bump expires the dead incarnation's timers), and restart the
    /// abandoned probe round.
    fn handle_takeover(&mut self, ctx: &mut Ctx<'_, RnaMsg>, term: u64) {
        if !self.ctrl_down || term != self.term + 1 {
            return; // stale timer from an older incarnation
        }
        self.term = term;
        self.ctrl_down = false;
        let round = self.journal.next_round();
        debug_assert_eq!(
            round,
            self.group.round(),
            "journal replay must agree with the group round"
        );
        self.group.recover_for_takeover(round);
        // One probe round was abandoned: the downtime cost of the takeover.
        ctx.note_controller_failover(1);
        self.start_next_round(ctx);
    }

    /// Applies the churn plan's events that fall on this round edge. Called
    /// right after `complete_round` bumped the group round, so
    /// `group.round()` is the round about to start:
    ///
    /// * a **retirement** with `at_round == round - 1` just contributed its
    ///   final round and leaves now (zero contributed rounds lost);
    /// * an **eviction** with `at_round == round` leaves before the round
    ///   it is excluded from, discarding any compute toward it;
    /// * a **join** with `at_round == round` is admitted: parameters are
    ///   streamed from a live peer (billed to the virtual wire) and the
    ///   member enters the election from this round on.
    ///
    /// Round edges advance by exactly one per completed collective, so the
    /// equality tests fire each event exactly once; the plan was validated
    /// at spec construction (no joins or evictions at round 0).
    fn process_churn(&mut self, ctx: &mut Ctx<'_, RnaMsg>) {
        let events: Vec<(usize, ChurnEvent)> = ctx.churn_plan().events().to_vec();
        if events.is_empty() {
            return;
        }
        let next = self.group.round();
        for (w, ev) in events {
            match ev {
                ChurnEvent::Retire { at_round } => {
                    if at_round + 1 == next && !self.departed[w] {
                        self.group.depart(&self.config, w);
                        self.departed[w] = true;
                        ctx.note_worker_retired(w, at_round);
                    }
                }
                ChurnEvent::Evict { at_round } => {
                    if at_round == next && !self.departed[w] {
                        self.group.depart(&self.config, w);
                        self.departed[w] = true;
                        ctx.note_worker_evicted(w, at_round);
                    }
                }
                ChurnEvent::Join { at_round, .. } => {
                    if at_round == next {
                        let snapshot_bytes = 4 * ctx.params(w).len() as u64;
                        self.group.handle_rejoin(ctx, &self.config, w);
                        ctx.charge_bytes(snapshot_bytes);
                        ctx.note_worker_joined(w, snapshot_bytes);
                    }
                }
            }
        }
    }

    /// Cuts the pending checkpoint if the quiesce has drained (every live
    /// member idle), then resumes the group exactly as the non-checkpoint
    /// path would have — the same sequence [`Protocol::on_resume`] replays
    /// after a restart, which is what makes disk resume bit-identical.
    fn try_cut_checkpoint(&mut self, ctx: &mut Ctx<'_, RnaMsg>) {
        if !self.group.quiescing() || !self.group.all_idle(ctx) {
            return;
        }
        let mut blob = Vec::new();
        wire::put_u64(&mut blob, self.term);
        wire::put_u64(&mut blob, self.crash_idx as u64);
        self.journal.encode_into(&mut blob);
        self.group.encode_into(&mut blob);
        ctx.write_checkpoint(&blob);
        self.group.end_quiesce();
        self.group.resume_paused(ctx, &self.config);
        self.start_next_round(ctx);
    }
}

impl Protocol for RnaProtocol {
    type Msg = RnaMsg;

    fn name(&self) -> &'static str {
        "rna"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, RnaMsg>) {
        for w in 0..ctx.num_workers() {
            if ctx.churn_plan().join_of(w).is_some() {
                // Planned joiner: dormant until its admission round.
                self.group.set_dormant(w);
            } else {
                ctx.begin_compute(w);
            }
        }
        // Routed through the crash check so a controller crash at round 0
        // is honored (workers still compute and fill caches meanwhile).
        self.start_next_round(ctx);
    }

    fn on_compute_done(&mut self, ctx: &mut Ctx<'_, RnaMsg>, worker: usize, iter: u64) {
        if self.departed[worker] {
            // The worker left at a round edge while this iteration was in
            // flight; its gradient no longer has a home.
            let _ = ctx.take_gradient(worker);
            return;
        }
        self.group
            .handle_compute_done(ctx, &self.config, worker, iter);
        if self.group.quiescing() {
            self.try_cut_checkpoint(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, RnaMsg>, _from: usize, to: usize, msg: RnaMsg) {
        if self.ctrl_down {
            // The active controller is dead: everything addressed to it is
            // lost. (Probes are controller→worker, so none are in flight;
            // StandbyTakeover is addressed to the *standby*.)
            match &msg {
                RnaMsg::ProbeReply { .. }
                | RnaMsg::ProbeRetry { .. }
                | RnaMsg::ReduceDone { .. } => return,
                _ => {}
            }
        }
        match msg {
            RnaMsg::Probe { round, .. } => {
                self.group.handle_probe(ctx, &self.config, to, round);
            }
            RnaMsg::ProbeReply { round, worker, .. } => {
                self.group.handle_reply(ctx, &self.config, worker, round);
            }
            RnaMsg::ProbeRetry { round, attempt, .. } => {
                self.group
                    .handle_probe_retry(ctx, &self.config, round, attempt);
            }
            RnaMsg::ReduceDone { round, .. } => {
                if let Some(contributors) = self.group.handle_reduce_done(ctx, &self.config, round)
                {
                    let initiator = self.group.last_initiator().unwrap_or(0);
                    self.group.complete_round(ctx, contributors);
                    self.journal.record(round, initiator, contributors as u32);
                    self.process_churn(ctx);
                    if ctx.checkpoint_due() && !ctx.stopped() {
                        self.group.begin_quiesce();
                        self.try_cut_checkpoint(ctx);
                    } else {
                        self.group.resume_paused(ctx, &self.config);
                        self.start_next_round(ctx);
                    }
                }
            }
            RnaMsg::PsDone { .. } => {
                // Flat RNA never schedules PS exchanges.
            }
            RnaMsg::StandbyTakeover { term } => {
                self.handle_takeover(ctx, term);
            }
        }
    }

    fn on_crash(&mut self, ctx: &mut Ctx<'_, RnaMsg>, worker: usize) {
        self.group.handle_crash(ctx, &self.config, worker);
        if self.group.quiescing() {
            // The crashed member no longer gates the quiesce.
            self.try_cut_checkpoint(ctx);
        }
    }

    fn on_rejoin(&mut self, ctx: &mut Ctx<'_, RnaMsg>, worker: usize) {
        self.group.handle_rejoin(ctx, &self.config, worker);
    }

    fn restore(&mut self, blob: &[u8]) -> bool {
        let mut r = Reader::new(blob);
        let Some(term) = r.u64() else { return false };
        let Some(crash_idx) = r.u64() else {
            return false;
        };
        let Some(journal) = RoundJournal::decode(&mut r) else {
            return false;
        };
        if !self.group.restore_from(&mut r) {
            return false;
        }
        self.term = term;
        self.crash_idx = crash_idx as usize;
        self.journal = journal;
        // Checkpoints are only cut at quiesce points, where the controller
        // is alive by construction.
        self.ctrl_down = false;
        true
    }

    fn on_resume(&mut self, ctx: &mut Ctx<'_, RnaMsg>) {
        // The departed set is pure plan-vs-round state, so it is recomputed
        // instead of checkpointed (the group's live flags did persist).
        let round = self.group.round();
        for w in 0..self.departed.len() {
            let plan = ctx.churn_plan();
            self.departed[w] = plan.retire_of(w).is_some_and(|r| round > r)
                || plan.evict_of(w).is_some_and(|r| round >= r);
        }
        // Exactly the continuation `try_cut_checkpoint` runs after writing
        // the checkpoint — resuming from disk replays the same events.
        self.group.resume_paused(ctx, &self.config);
        self.start_next_round(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Engine, TrainSpec};
    use crate::StopReason;
    use rna_simnet::SimDuration;
    use rna_workload::HeterogeneityModel;

    fn run(n: usize, seed: u64, config: RnaConfig, rounds: u64) -> crate::RunResult {
        let spec = TrainSpec::smoke_test(n, seed).with_max_rounds(rounds);
        Engine::new(spec, RnaProtocol::new(n, config, seed)).run()
    }

    #[test]
    fn rna_trains_to_lower_loss() {
        let r = run(4, 3, RnaConfig::default(), 200);
        let pts = r.history.points();
        assert!(pts.len() > 3);
        assert!(
            pts.last().unwrap().loss < pts[0].loss * 0.7,
            "loss {} -> {}",
            pts[0].loss,
            pts.last().unwrap().loss
        );
        assert_eq!(r.stop_reason, StopReason::MaxRounds);
    }

    #[test]
    fn rna_is_deterministic() {
        let a = run(4, 9, RnaConfig::default(), 60);
        let b = run(4, 9, RnaConfig::default(), 60);
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.final_loss(), b.final_loss());
        assert_eq!(a.worker_iterations, b.worker_iterations);
        assert_eq!(a.comm_bytes, b.comm_bytes);
    }

    #[test]
    fn lossless_codec_is_bit_identical_to_default() {
        use rna_tensor::Compression;
        let a = run(4, 9, RnaConfig::default(), 60);
        let b = run(
            4,
            9,
            RnaConfig::default().with_compression(Compression::Lossless),
            60,
        );
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.comm_bytes, b.comm_bytes);
        assert_eq!(a.final_loss(), b.final_loss());
        assert_eq!(a.worker_iterations, b.worker_iterations);
        assert!(a.bytes_on_wire > 0, "gradient rings must be accounted");
        assert_eq!(a.bytes_saved, 0, "lossless saves nothing");
        assert_eq!(a.codec_error_l2, 0.0, "lossless drops nothing");
        assert!(
            a.bytes_on_wire <= a.comm_bytes,
            "wire bytes are a subset of all traffic"
        );
    }

    #[test]
    fn every_codec_replays_bit_identically_from_the_same_seed() {
        use rna_tensor::Compression;
        for codec in [
            Compression::Fp16,
            Compression::Int8,
            Compression::top_k_10pct(),
        ] {
            let config = RnaConfig::default().with_compression(codec);
            let a = run(4, 11, config.clone(), 50);
            let b = run(4, 11, config, 50);
            assert_eq!(a.wall_time, b.wall_time, "{codec:?}");
            assert_eq!(a.comm_bytes, b.comm_bytes, "{codec:?}");
            assert_eq!(a.final_loss(), b.final_loss(), "{codec:?}");
            assert_eq!(a.bytes_on_wire, b.bytes_on_wire, "{codec:?}");
            assert_eq!(a.codec_error_l2, b.codec_error_l2, "{codec:?}");
        }
    }

    #[test]
    fn lossy_codecs_shrink_the_wire_and_the_clock() {
        use rna_tensor::Compression;
        let lossless = run(4, 9, RnaConfig::default(), 60);
        let fp16 = run(
            4,
            9,
            RnaConfig::default().with_compression(Compression::Fp16),
            60,
        );
        let topk = run(
            4,
            9,
            RnaConfig::default().with_compression(Compression::top_k_10pct()),
            60,
        );
        let ratio = |r: &crate::RunResult| lossless.bytes_on_wire as f64 / r.bytes_on_wire as f64;
        assert!(ratio(&fp16) >= 1.9, "fp16 wire ratio {}", ratio(&fp16));
        assert!(ratio(&topk) >= 3.5, "topk wire ratio {}", ratio(&topk));
        assert!(fp16.bytes_saved > 0 && topk.bytes_saved > 0);
        assert!(
            fp16.wall_time <= lossless.wall_time,
            "smaller frames cannot slow the virtual clock"
        );
        assert!(fp16.codec_error_l2 > 0.0 && fp16.codec_error_l2.is_finite());
    }

    #[test]
    fn lossy_codecs_still_train_to_lower_loss() {
        use rna_tensor::Compression;
        for codec in [Compression::Fp16, Compression::Int8] {
            let r = run(4, 3, RnaConfig::default().with_compression(codec), 200);
            let pts = r.history.points();
            assert!(
                pts.last().unwrap().loss < pts[0].loss * 0.7,
                "{codec:?}: loss {} -> {}",
                pts[0].loss,
                pts.last().unwrap().loss
            );
        }
    }

    #[test]
    fn participation_is_partial_under_heterogeneity() {
        let n = 8;
        let spec = TrainSpec::smoke_test(n, 5)
            .with_hetero(HeterogeneityModel::dynamic_uniform(n, 0, 50))
            .with_max_rounds(80);
        let r = Engine::new(spec, RnaProtocol::new(n, RnaConfig::default(), 0)).run();
        let p = r.mean_participation();
        assert!(p > 0.2 && p < 1.0, "participation {p}");
    }

    #[test]
    fn homogeneous_cluster_approaches_full_participation() {
        let r = run(4, 7, RnaConfig::default(), 80);
        assert!(r.mean_participation() > 0.5, "{}", r.mean_participation());
    }

    #[test]
    fn initiators_are_randomized() {
        let n = 4;
        let spec = TrainSpec::smoke_test(n, 13).with_max_rounds(120);
        let engine = Engine::new(spec, RnaProtocol::new(n, RnaConfig::default(), 0));
        // Run through the engine; initiator counts accumulate inside the
        // protocol, which the engine consumes — so re-run with a probe into
        // the protocol by keeping it outside.
        let result = engine.run();
        assert_eq!(result.global_rounds, 120);
        // Statistical check via a fresh protocol instance driven manually is
        // heavyweight; instead assert the rounds completed and relied on
        // `probe::tests` for election fairness.
    }

    #[test]
    fn rna_outpaces_bsp_under_stragglers() {
        // The headline claim, in miniature: with random 0–50 ms delays,
        // RNA completes rounds faster than a strict barrier would.
        let n = 8;
        let hetero = HeterogeneityModel::dynamic_uniform(n, 0, 50);
        let spec = TrainSpec::smoke_test(n, 21)
            .with_hetero(hetero)
            .with_max_rounds(60);
        let r = Engine::new(spec, RnaProtocol::new(n, RnaConfig::default(), 0)).run();
        // Mean compute is 5ms + 25ms delay = 30ms. A strict barrier pays
        // E[max of 8 × U(0,50)] ≈ 44ms + 5ms per round. RNA's rounds are
        // driven by the *fastest of two probes*, so mean round time must be
        // well under the barrier bound.
        let barrier_bound = SimDuration::from_millis_f64(49.0);
        assert!(
            r.mean_round_time() < barrier_bound,
            "round time {} vs barrier {}",
            r.mean_round_time(),
            barrier_bound
        );
    }

    #[test]
    fn max_lead_bounds_iteration_spread() {
        let n = 4;
        let config = RnaConfig::default().with_max_lead(3);
        let spec = TrainSpec::smoke_test(n, 17)
            .with_hetero(HeterogeneityModel::deterministic(&[0, 0, 0, 40]))
            .with_max_rounds(60);
        let r = Engine::new(spec, RnaProtocol::new(n, config, 0)).run();
        let max = *r.worker_iterations.iter().max().unwrap();
        // No worker can have produced more than rounds + lead iterations.
        assert!(
            max <= r.global_rounds + 3 + 1,
            "iterations {max} vs rounds {}",
            r.global_rounds
        );
    }

    #[test]
    fn single_worker_rna_degenerates_to_sgd() {
        let r = run(1, 2, RnaConfig::default().with_probes(1), 50);
        assert_eq!(r.global_rounds, 50);
        assert!(r.mean_participation() > 0.99);
        let pts = r.history.points();
        assert!(pts.last().unwrap().loss < pts[0].loss);
    }

    #[test]
    fn one_probe_config_still_makes_progress() {
        let r = run(4, 11, RnaConfig::default().with_probes(1), 60);
        assert_eq!(r.global_rounds, 60);
    }

    #[test]
    fn controller_failover_is_survived_and_deterministic() {
        use crate::fault::FaultPlan;
        let run = |plan: FaultPlan| {
            let spec = TrainSpec::smoke_test(4, 23)
                .with_max_rounds(40)
                .with_fault_plan(plan);
            Engine::new(spec, RnaProtocol::new(4, RnaConfig::default(), 0)).run()
        };
        let a = run(FaultPlan::none().crash_controller(10));
        let b = run(FaultPlan::none().crash_controller(10));
        let clean = run(FaultPlan::none());
        assert_eq!(a.global_rounds, 40);
        assert_eq!(a.controller_failovers, 1);
        assert_eq!(a.failover_rounds_lost, 1);
        // Same-seed replays of the failover are bit-identical.
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.final_loss(), b.final_loss());
        assert_eq!(a.comm_bytes, b.comm_bytes);
        assert_eq!(a.worker_iterations, b.worker_iterations);
        // The lease window is real downtime.
        assert!(a.wall_time > clean.wall_time);
        assert_eq!(clean.controller_failovers, 0);
    }

    #[test]
    fn controller_crash_at_round_zero_is_survived() {
        use crate::fault::FaultPlan;
        let spec = TrainSpec::smoke_test(3, 4)
            .with_max_rounds(20)
            .with_fault_plan(FaultPlan::none().crash_controller(0));
        let r = Engine::new(spec, RnaProtocol::new(3, RnaConfig::default(), 0)).run();
        assert_eq!(r.global_rounds, 20);
        assert_eq!(r.controller_failovers, 1);
    }

    #[test]
    fn repeated_controller_crashes_each_fail_over() {
        use crate::fault::FaultPlan;
        let spec = TrainSpec::smoke_test(4, 31)
            .with_max_rounds(30)
            .with_fault_plan(FaultPlan::none().crash_controller(5).crash_controller(15));
        let r = Engine::new(spec, RnaProtocol::new(4, RnaConfig::default(), 0)).run();
        assert_eq!(r.global_rounds, 30);
        assert_eq!(r.controller_failovers, 2);
        assert_eq!(r.failover_rounds_lost, 2);
    }

    #[test]
    fn transfer_overhead_slows_rounds() {
        let n = 4;
        let base = TrainSpec::smoke_test(n, 19).with_max_rounds(40);
        let mut charged = base.clone();
        charged.charge_transfer_overhead = true;
        let fast = Engine::new(base, RnaProtocol::new(n, RnaConfig::default(), 0)).run();
        let slow = Engine::new(charged, RnaProtocol::new(n, RnaConfig::default(), 0)).run();
        assert!(slow.wall_time > fast.wall_time);
    }
}
