//! The RNA protocol engine (§3).
//!
//! One [`GroupState`] drives randomized non-blocking AllReduce over a set of
//! member workers:
//!
//! 1. The controller samples `d` members and probes them
//!    ([`crate::probe::ProbeRound`]). A probed member replies as soon as its
//!    [`crate::cache::GradientCache`] is non-empty.
//! 2. The first accepted reply elects the **initiator**; the controller
//!    immediately forces the collective. Every member contributes its
//!    locally reduced cache content — or null if it has nothing.
//! 3. The partial AllReduce costs one trigger latency plus the ring time
//!    (plus the GPU↔CPU staging cost when the spec charges it); when it
//!    completes, all members apply the contributor-average with the
//!    learning rate scaled by the contributor count (Algorithm 2).
//!
//! Workers never block on the collective: compute continues across
//! iterations (Figure 4), bounded by `max_lead` so stragglers cannot be
//! left arbitrarily far behind.
//!
//! [`RnaProtocol`] wraps a single group spanning the whole cluster;
//! `rna-core::hier` reuses [`GroupState`] for per-group RNA.

use rna_collectives::{partial_allreduce, partial_allreduce_pooled};
use rna_simnet::trace::SpanKind;
use rna_tensor::Tensor;

use crate::cache::GradientCache;
use crate::probe::ProbeRound;
use crate::sim::{Ctx, Protocol};
use crate::RnaConfig;

/// Messages exchanged by RNA (both flat and hierarchical variants).
#[derive(Debug, Clone)]
pub enum RnaMsg {
    /// Controller → probed worker: "reply when you have gradients ready".
    Probe {
        /// Group the probe belongs to.
        group: usize,
        /// Round identifier (stale replies are expired).
        round: u64,
    },
    /// Probed worker → controller: "my gradients are ready".
    ProbeReply {
        /// Group the reply belongs to.
        group: usize,
        /// Round identifier from the probe.
        round: u64,
        /// The replying worker.
        worker: usize,
    },
    /// Controller self-timer: re-probe if the election round is still
    /// winnerless (a dropped probe or reply must not wedge it). Armed only
    /// when the fabric injects network faults.
    ProbeRetry {
        /// Group the retry belongs to.
        group: usize,
        /// Round the timer was armed for (stale timers are ignored).
        round: u64,
        /// Probe-issue epoch the timer was armed for — a resample from any
        /// other path (e.g. a crash) bumps the epoch, expiring this timer.
        attempt: u64,
    },
    /// Self-scheduled completion of a group's partial AllReduce.
    ReduceDone {
        /// Group whose collective finished.
        group: usize,
        /// Round that finished.
        round: u64,
    },
    /// Self-scheduled completion of a hierarchical PS push-pull +
    /// intra-group broadcast, carrying the blended parameters.
    PsDone {
        /// Group whose exchange finished.
        group: usize,
        /// Blended parameters pulled from the server.
        blended: Tensor,
    },
}

/// Per-group RNA state machine. `pub` so the hierarchical protocol can
/// drive several groups; typical users go through [`RnaProtocol`].
#[derive(Debug)]
pub struct GroupState {
    /// Group id (index into the hierarchical group list; 0 for flat RNA).
    pub id: usize,
    /// Global worker ids belonging to this group.
    pub members: Vec<usize>,
    caches: Vec<GradientCache>,
    pending_reply: Vec<Option<u64>>,
    probe: Option<ProbeRound>,
    round: u64,
    reducing: bool,
    paused: Vec<bool>,
    live: Vec<bool>,
    in_flight: Option<ReduceOutcome>,
    deferred: Option<usize>,
    initiator_counts: Vec<u64>,
    last_initiator: Option<usize>,
    probe_epoch: u64,
    retry_backoff_us: u64,
}

/// A finished collective waiting to be applied: the reduced gradient, how
/// many members contributed, and which members were reachable from the
/// initiator (partitioned members are excluded from the apply — they catch
/// up through their staleness-weighted caches on heal).
#[derive(Debug)]
struct ReduceOutcome {
    reduced: Tensor,
    contributors: usize,
    applied: Vec<usize>,
}

impl GroupState {
    /// Creates the state machine for `members` under `config`.
    ///
    /// A `config.probes` larger than the group is not an error: probe
    /// counts are clamped to the group size, so small groups simply probe
    /// everyone.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(id: usize, members: Vec<usize>, config: &RnaConfig) -> Self {
        assert!(!members.is_empty(), "group needs at least one member");
        let n = members.len();
        GroupState {
            id,
            members,
            caches: (0..n)
                .map(|_| GradientCache::new(config.staleness_bound, config.weighted_accumulation))
                .collect(),
            pending_reply: vec![None; n],
            probe: None,
            round: 0,
            reducing: false,
            paused: vec![false; n],
            live: vec![true; n],
            in_flight: None,
            deferred: None,
            initiator_counts: vec![0; n],
            last_initiator: None,
            probe_epoch: 0,
            retry_backoff_us: 0,
        }
    }

    /// The group's current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// How many times each member has been elected initiator.
    pub fn initiator_counts(&self) -> &[u64] {
        &self.initiator_counts
    }

    /// The member elected initiator in the most recent round, if any.
    pub fn last_initiator(&self) -> Option<usize> {
        self.last_initiator
    }

    fn member_index(&self, worker: usize) -> Option<usize> {
        self.members.iter().position(|&m| m == worker)
    }

    /// Issues this round's probes (power-of-`d`-choices over the group's
    /// *live* members — crashed workers are never probed).
    pub fn start_probe_round(&mut self, ctx: &mut Ctx<'_, RnaMsg>, config: &RnaConfig) {
        self.retry_backoff_us = config.probe_retry_us;
        self.issue_probes(ctx, config);
    }

    /// Samples and sends one batch of probes, bumping the probe epoch (so
    /// any retry timer armed for an earlier batch expires) and arming a
    /// fresh retry timer when the fabric is faulty.
    fn issue_probes(&mut self, ctx: &mut Ctx<'_, RnaMsg>, config: &RnaConfig) {
        let live: Vec<usize> = (0..self.members.len()).filter(|&l| self.live[l]).collect();
        if live.is_empty() {
            // The whole group died; nothing left to coordinate.
            self.probe = None;
            return;
        }
        let d = config.probes.min(live.len());
        let picks = ctx.rng().choose_distinct(live.len(), d);
        let probed: Vec<usize> = picks.into_iter().map(|i| live[i]).collect();
        let round = ProbeRound::from_probed(self.round, probed);
        let ctrl = ctx.controller_id();
        for &local in round.probed() {
            ctx.send(
                ctrl,
                self.members[local],
                config.probe_bytes,
                RnaMsg::Probe {
                    group: self.id,
                    round: self.round,
                },
            );
        }
        self.probe = Some(round);
        self.probe_epoch += 1;
        if ctx.net_faults_enabled() {
            // A dropped probe or reply would otherwise wedge the election
            // forever: the controller only reacts to messages, and none
            // would come. On a reliable fabric the timer is pointless (and
            // arming it would perturb event-for-event determinism of
            // existing runs), so it is gated on faults being present.
            ctx.send_after(
                ctx.controller_id(),
                rna_simnet::SimDuration::from_micros(self.retry_backoff_us),
                RnaMsg::ProbeRetry {
                    group: self.id,
                    round: self.round,
                    attempt: self.probe_epoch,
                },
            );
        }
    }

    /// A probe-retry timer fired: if the election round it was armed for
    /// is still the current one, still winnerless, and no other path has
    /// re-probed since (same epoch), resample with doubled backoff.
    pub fn handle_probe_retry(
        &mut self,
        ctx: &mut Ctx<'_, RnaMsg>,
        config: &RnaConfig,
        round: u64,
        attempt: u64,
    ) {
        if round != self.round || self.reducing || ctx.stopped() {
            return;
        }
        if attempt != self.probe_epoch {
            return;
        }
        let Some(probe) = &self.probe else {
            return;
        };
        if probe.winner().is_some() {
            return;
        }
        ctx.note_probe_retry();
        self.retry_backoff_us = self.retry_backoff_us.saturating_mul(2);
        self.issue_probes(ctx, config);
    }

    /// A member crashed: remove it from election and — if every probed
    /// member of the in-flight probe round is now dead — resample
    /// immediately so the round cannot stall.
    pub fn handle_crash(&mut self, ctx: &mut Ctx<'_, RnaMsg>, config: &RnaConfig, worker: usize) {
        let Some(local) = self.member_index(worker) else {
            return;
        };
        self.live[local] = false;
        self.pending_reply[local] = None;
        self.caches[local] =
            GradientCache::new(config.staleness_bound, config.weighted_accumulation);
        if self.reducing {
            return;
        }
        let stalled = self.probe.as_ref().is_some_and(|p| {
            p.winner().is_none() && crate::fault::probe_round_stalled(p.probed(), &self.live)
        });
        if stalled {
            self.start_probe_round(ctx, config);
        }
    }

    /// A probe arrived at `worker`: reply immediately if gradients are
    /// ready, otherwise remember the probe.
    pub fn handle_probe(
        &mut self,
        ctx: &mut Ctx<'_, RnaMsg>,
        config: &RnaConfig,
        worker: usize,
        round: u64,
    ) {
        let Some(local) = self.member_index(worker) else {
            return;
        };
        if !self.caches[local].is_empty() {
            self.send_reply(ctx, config, worker, round);
        } else {
            self.pending_reply[local] = Some(round);
        }
    }

    fn send_reply(
        &mut self,
        ctx: &mut Ctx<'_, RnaMsg>,
        config: &RnaConfig,
        worker: usize,
        round: u64,
    ) {
        let ctrl = ctx.controller_id();
        ctx.send(
            worker,
            ctrl,
            config.probe_bytes,
            RnaMsg::ProbeReply {
                group: self.id,
                round,
                worker,
            },
        );
    }

    /// A member finished a local iteration: cache its gradient, answer any
    /// pending probe, and keep computing unless the lead bound is hit.
    pub fn handle_compute_done(
        &mut self,
        ctx: &mut Ctx<'_, RnaMsg>,
        config: &RnaConfig,
        worker: usize,
        iter: u64,
    ) {
        let Some(local) = self.member_index(worker) else {
            return;
        };
        if let Some((_, grad)) = ctx.take_gradient(worker) {
            self.caches[local].write(iter, grad);
        }
        if let Some(round) = self.pending_reply[local].take() {
            self.send_reply(ctx, config, worker, round);
        }
        self.maybe_continue(ctx, config, local);
    }

    /// Starts the member's next iteration unless it is too far ahead of the
    /// group round (bounded lead) or the run has stopped.
    fn maybe_continue(&mut self, ctx: &mut Ctx<'_, RnaMsg>, config: &RnaConfig, local: usize) {
        let worker = self.members[local];
        if ctx.stopped() || ctx.is_computing(worker) || !self.live[local] {
            return;
        }
        if ctx.local_iter(worker).saturating_sub(self.round) >= config.max_lead {
            self.paused[local] = true;
            ctx.set_span(worker, SpanKind::Wait);
        } else {
            self.paused[local] = false;
            ctx.begin_compute(worker);
        }
    }

    /// A probe reply reached the controller. Returns `true` when the reply
    /// elected an initiator and the collective was launched.
    pub fn handle_reply(
        &mut self,
        ctx: &mut Ctx<'_, RnaMsg>,
        config: &RnaConfig,
        worker: usize,
        round: u64,
    ) -> bool {
        let Some(local) = self.member_index(worker) else {
            return false;
        };
        if self.reducing {
            return false;
        }
        let Some(probe) = &mut self.probe else {
            return false;
        };
        if !probe.offer_reply(local, round) {
            return false;
        }
        self.initiator_counts[local] += 1;
        self.last_initiator = Some(worker);
        self.launch_reduce(ctx, config);
        true
    }

    /// Forces the partial AllReduce: snapshot contributions, compute the
    /// contributor average, and schedule completion after the collective's
    /// virtual cost.
    ///
    /// Members the initiator cannot reach (partition or flap) neither
    /// contribute nor receive the result: their contribution is a null —
    /// the paper-consistent treatment of a lost contribution — and their
    /// caches keep accumulating so they reconcile, staleness-weighted, on
    /// heal.
    fn launch_reduce(&mut self, ctx: &mut Ctx<'_, RnaMsg>, config: &RnaConfig) {
        self.reducing = true;
        let k = self.round;
        let initiator = self
            .last_initiator
            .expect("launch_reduce is only reached from an accepted reply");
        let reachable: Vec<bool> = self
            .members
            .iter()
            .map(|&m| m == initiator || ctx.link_up(initiator, m))
            .collect();
        if reachable.iter().any(|&r| !r) {
            ctx.note_partition_round();
        }
        // Everything from the cache drain to the reduced output runs on the
        // pooled, fused data path (bit-identical to the naive one); the
        // debug alloc delta proves steady-state rounds allocate nothing.
        let allocs_before = rna_tensor::alloc::count();
        let caches = &mut self.caches;
        let contributions: Vec<Option<Tensor>> = if config.pooled {
            caches
                .iter_mut()
                .zip(&reachable)
                .map(|(c, &r)| {
                    if r {
                        c.take_contribution_pooled(k, ctx.pool_mut())
                    } else {
                        None
                    }
                })
                .collect()
        } else {
            caches
                .iter_mut()
                .zip(&reachable)
                .map(|(c, &r)| if r { c.take_contribution(k) } else { None })
                .collect()
        };
        let refs: Vec<Option<&Tensor>> = contributions.iter().map(Option::as_ref).collect();
        let outcome = if config.pooled {
            partial_allreduce_pooled(&refs, ctx.pool_mut())
        } else {
            partial_allreduce(&refs)
        }
        .expect("initiator has a ready gradient, so the round cannot be empty");
        if config.pooled {
            for g in contributions.into_iter().flatten() {
                ctx.pool_release(g);
            }
        }
        ctx.note_datapath_allocs(rna_tensor::alloc::count() - allocs_before);
        let applied: Vec<usize> = self
            .members
            .iter()
            .zip(&reachable)
            .filter(|(_, &r)| r)
            .map(|(&m, _)| m)
            .collect();
        self.in_flight = Some(ReduceOutcome {
            reduced: outcome.reduced,
            contributors: outcome.num_contributors,
            applied,
        });
        let n = self.members.len();
        let cost = ctx.cost();
        let bytes = ctx.grad_bytes();
        let duration = cost.link().transfer_time(64) // trigger broadcast
            + cost.ring_allreduce(n, bytes)
            + ctx.transfer_overhead();
        ctx.charge_bytes(cost.ring_bytes_per_worker(n, bytes) * n as u64);
        for &w in &self.members {
            if !ctx.is_computing(w) {
                ctx.set_span(w, SpanKind::Communicate);
            }
        }
        ctx.send_after(
            ctx.controller_id(),
            duration,
            RnaMsg::ReduceDone {
                group: self.id,
                round: k,
            },
        );
    }

    /// Claims the finished collective's result without applying it —
    /// the hierarchical protocol routes it through the parameter server
    /// instead. Returns `(reduced, contributors, applied_members)`, or
    /// `None` if the completion was stale. `applied_members` are the
    /// global ids the result should be applied to (members the initiator
    /// could not reach at launch time are excluded).
    pub fn take_reduce_result(&mut self, round: u64) -> Option<(Tensor, usize, Vec<usize>)> {
        if round != self.round || !self.reducing {
            return None;
        }
        self.in_flight
            .take()
            .map(|o| (o.reduced, o.contributors, o.applied))
    }

    /// Applies a reduced gradient to `targets` with the configured
    /// learning-rate scaling.
    pub fn apply_reduce(
        &mut self,
        ctx: &mut Ctx<'_, RnaMsg>,
        config: &RnaConfig,
        reduced: &Tensor,
        contributors: usize,
        targets: &[usize],
    ) {
        let lr_scale = if config.dynamic_lr_scaling {
            contributors as f32
        } else {
            1.0
        };
        ctx.apply_reduced(targets, reduced, lr_scale);
    }

    /// The collective finished: apply the update to every reachable
    /// member. Returns the contributor count, or `None` if the completion
    /// was stale.
    ///
    /// The caller is responsible for round bookkeeping
    /// ([`GroupState::advance_round`]) — the hierarchical protocol inserts
    /// a PS exchange in between.
    pub fn handle_reduce_done(
        &mut self,
        ctx: &mut Ctx<'_, RnaMsg>,
        config: &RnaConfig,
        round: u64,
    ) -> Option<usize> {
        let (reduced, contributors, applied) = self.take_reduce_result(round)?;
        let allocs_before = rna_tensor::alloc::count();
        self.apply_reduce(ctx, config, &reduced, contributors, &applied);
        if config.pooled {
            ctx.pool_release(reduced);
        }
        ctx.note_datapath_allocs(rna_tensor::alloc::count() - allocs_before);
        Some(contributors)
    }

    /// A live member of the group, preferring the most recent initiator —
    /// the node the hierarchical protocol treats as the group's
    /// representative toward the parameter server.
    pub fn representative(&self) -> Option<usize> {
        if let Some(w) = self.last_initiator {
            if let Some(l) = self.member_index(w) {
                if self.live[l] {
                    return Some(w);
                }
            }
        }
        (0..self.members.len())
            .find(|&l| self.live[l])
            .map(|l| self.members[l])
    }

    /// A crashed member rejoined: re-admit it to the liveness view with a
    /// fresh cache, seed it with a live peer's current parameters (the
    /// "pull the current model" half of a restart), and restart its
    /// compute pipeline. If the whole group had died, this also revives
    /// the election loop.
    pub fn handle_rejoin(&mut self, ctx: &mut Ctx<'_, RnaMsg>, config: &RnaConfig, worker: usize) {
        let Some(local) = self.member_index(worker) else {
            return;
        };
        self.live[local] = true;
        self.paused[local] = false;
        self.pending_reply[local] = None;
        self.caches[local] =
            GradientCache::new(config.staleness_bound, config.weighted_accumulation);
        if let Some(donor) = (0..self.members.len())
            .find(|&l| l != local && self.live[l])
            .map(|l| self.members[l])
        {
            let params = ctx.params(donor);
            ctx.set_params(worker, &params);
        }
        let election_dead = self.probe.is_none() && !self.reducing;
        if election_dead && !ctx.stopped() {
            self.start_probe_round(ctx, config);
        }
        self.maybe_continue(ctx, config, local);
    }

    /// Defers round completion: the hierarchical protocol calls this when a
    /// PS exchange must land before the round can advance. While deferred,
    /// `reducing` stays set, so no new collective can trigger.
    pub fn advance_round_deferred(&mut self, contributors: usize) {
        self.deferred = Some(contributors);
    }

    /// Completes a previously deferred round (after the PS broadcast).
    pub fn complete_deferred_round(&mut self, ctx: &mut Ctx<'_, RnaMsg>, config: &RnaConfig) {
        if let Some(contributors) = self.deferred.take() {
            self.advance_round(ctx, config, contributors);
        }
    }

    /// Completes the round: bump counters, resume paused members, and (if
    /// the run continues) start the next probe round.
    pub fn advance_round(
        &mut self,
        ctx: &mut Ctx<'_, RnaMsg>,
        config: &RnaConfig,
        contributors: usize,
    ) {
        self.reducing = false;
        self.round += 1;
        ctx.finish_round(contributors as f64 / self.members.len() as f64);
        for local in 0..self.members.len() {
            if self.paused[local] {
                self.maybe_continue(ctx, config, local);
            }
        }
        if !ctx.stopped() {
            self.start_probe_round(ctx, config);
        }
    }
}

/// Flat RNA: one group spanning the entire cluster.
///
/// # Examples
///
/// ```
/// use rna_core::rna::RnaProtocol;
/// use rna_core::sim::{Engine, TrainSpec};
/// use rna_core::RnaConfig;
///
/// let result = Engine::new(
///     TrainSpec::smoke_test(4, 1),
///     RnaProtocol::new(4, RnaConfig::default(), 99),
/// )
/// .run();
/// assert!(result.global_rounds > 0);
/// ```
#[derive(Debug)]
pub struct RnaProtocol {
    config: RnaConfig,
    group: GroupState,
}

impl RnaProtocol {
    /// Creates flat RNA over `n` workers. `_seed` is kept for API
    /// compatibility with experiment configs; randomness flows from the
    /// engine's protocol RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, config: RnaConfig, _seed: u64) -> Self {
        let group = GroupState::new(0, (0..n).collect(), &config);
        RnaProtocol { config, group }
    }

    /// The underlying group state (for tests and diagnostics).
    pub fn group(&self) -> &GroupState {
        &self.group
    }
}

impl Protocol for RnaProtocol {
    type Msg = RnaMsg;

    fn name(&self) -> &'static str {
        "rna"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, RnaMsg>) {
        for w in 0..ctx.num_workers() {
            ctx.begin_compute(w);
        }
        self.group.start_probe_round(ctx, &self.config);
    }

    fn on_compute_done(&mut self, ctx: &mut Ctx<'_, RnaMsg>, worker: usize, iter: u64) {
        self.group
            .handle_compute_done(ctx, &self.config, worker, iter);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, RnaMsg>, _from: usize, to: usize, msg: RnaMsg) {
        match msg {
            RnaMsg::Probe { round, .. } => {
                self.group.handle_probe(ctx, &self.config, to, round);
            }
            RnaMsg::ProbeReply { round, worker, .. } => {
                self.group.handle_reply(ctx, &self.config, worker, round);
            }
            RnaMsg::ProbeRetry { round, attempt, .. } => {
                self.group
                    .handle_probe_retry(ctx, &self.config, round, attempt);
            }
            RnaMsg::ReduceDone { round, .. } => {
                if let Some(contributors) = self.group.handle_reduce_done(ctx, &self.config, round)
                {
                    self.group.advance_round(ctx, &self.config, contributors);
                }
            }
            RnaMsg::PsDone { .. } => {
                // Flat RNA never schedules PS exchanges.
            }
        }
    }

    fn on_crash(&mut self, ctx: &mut Ctx<'_, RnaMsg>, worker: usize) {
        self.group.handle_crash(ctx, &self.config, worker);
    }

    fn on_rejoin(&mut self, ctx: &mut Ctx<'_, RnaMsg>, worker: usize) {
        self.group.handle_rejoin(ctx, &self.config, worker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Engine, TrainSpec};
    use crate::StopReason;
    use rna_simnet::SimDuration;
    use rna_workload::HeterogeneityModel;

    fn run(n: usize, seed: u64, config: RnaConfig, rounds: u64) -> crate::RunResult {
        let spec = TrainSpec::smoke_test(n, seed).with_max_rounds(rounds);
        Engine::new(spec, RnaProtocol::new(n, config, seed)).run()
    }

    #[test]
    fn rna_trains_to_lower_loss() {
        let r = run(4, 3, RnaConfig::default(), 200);
        let pts = r.history.points();
        assert!(pts.len() > 3);
        assert!(
            pts.last().unwrap().loss < pts[0].loss * 0.7,
            "loss {} -> {}",
            pts[0].loss,
            pts.last().unwrap().loss
        );
        assert_eq!(r.stop_reason, StopReason::MaxRounds);
    }

    #[test]
    fn rna_is_deterministic() {
        let a = run(4, 9, RnaConfig::default(), 60);
        let b = run(4, 9, RnaConfig::default(), 60);
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.final_loss(), b.final_loss());
        assert_eq!(a.worker_iterations, b.worker_iterations);
        assert_eq!(a.comm_bytes, b.comm_bytes);
    }

    #[test]
    fn participation_is_partial_under_heterogeneity() {
        let n = 8;
        let spec = TrainSpec::smoke_test(n, 5)
            .with_hetero(HeterogeneityModel::dynamic_uniform(n, 0, 50))
            .with_max_rounds(80);
        let r = Engine::new(spec, RnaProtocol::new(n, RnaConfig::default(), 0)).run();
        let p = r.mean_participation();
        assert!(p > 0.2 && p < 1.0, "participation {p}");
    }

    #[test]
    fn homogeneous_cluster_approaches_full_participation() {
        let r = run(4, 7, RnaConfig::default(), 80);
        assert!(r.mean_participation() > 0.5, "{}", r.mean_participation());
    }

    #[test]
    fn initiators_are_randomized() {
        let n = 4;
        let spec = TrainSpec::smoke_test(n, 13).with_max_rounds(120);
        let engine = Engine::new(spec, RnaProtocol::new(n, RnaConfig::default(), 0));
        // Run through the engine; initiator counts accumulate inside the
        // protocol, which the engine consumes — so re-run with a probe into
        // the protocol by keeping it outside.
        let result = engine.run();
        assert_eq!(result.global_rounds, 120);
        // Statistical check via a fresh protocol instance driven manually is
        // heavyweight; instead assert the rounds completed and relied on
        // `probe::tests` for election fairness.
    }

    #[test]
    fn rna_outpaces_bsp_under_stragglers() {
        // The headline claim, in miniature: with random 0–50 ms delays,
        // RNA completes rounds faster than a strict barrier would.
        let n = 8;
        let hetero = HeterogeneityModel::dynamic_uniform(n, 0, 50);
        let spec = TrainSpec::smoke_test(n, 21)
            .with_hetero(hetero)
            .with_max_rounds(60);
        let r = Engine::new(spec, RnaProtocol::new(n, RnaConfig::default(), 0)).run();
        // Mean compute is 5ms + 25ms delay = 30ms. A strict barrier pays
        // E[max of 8 × U(0,50)] ≈ 44ms + 5ms per round. RNA's rounds are
        // driven by the *fastest of two probes*, so mean round time must be
        // well under the barrier bound.
        let barrier_bound = SimDuration::from_millis_f64(49.0);
        assert!(
            r.mean_round_time() < barrier_bound,
            "round time {} vs barrier {}",
            r.mean_round_time(),
            barrier_bound
        );
    }

    #[test]
    fn max_lead_bounds_iteration_spread() {
        let n = 4;
        let config = RnaConfig::default().with_max_lead(3);
        let spec = TrainSpec::smoke_test(n, 17)
            .with_hetero(HeterogeneityModel::deterministic(&[0, 0, 0, 40]))
            .with_max_rounds(60);
        let r = Engine::new(spec, RnaProtocol::new(n, config, 0)).run();
        let max = *r.worker_iterations.iter().max().unwrap();
        // No worker can have produced more than rounds + lead iterations.
        assert!(
            max <= r.global_rounds + 3 + 1,
            "iterations {max} vs rounds {}",
            r.global_rounds
        );
    }

    #[test]
    fn single_worker_rna_degenerates_to_sgd() {
        let r = run(1, 2, RnaConfig::default().with_probes(1), 50);
        assert_eq!(r.global_rounds, 50);
        assert!(r.mean_participation() > 0.99);
        let pts = r.history.points();
        assert!(pts.last().unwrap().loss < pts[0].loss);
    }

    #[test]
    fn one_probe_config_still_makes_progress() {
        let r = run(4, 11, RnaConfig::default().with_probes(1), 60);
        assert_eq!(r.global_rounds, 60);
    }

    #[test]
    fn transfer_overhead_slows_rounds() {
        let n = 4;
        let base = TrainSpec::smoke_test(n, 19).with_max_rounds(40);
        let mut charged = base.clone();
        charged.charge_transfer_overhead = true;
        let fast = Engine::new(base, RnaProtocol::new(n, RnaConfig::default(), 0)).run();
        let slow = Engine::new(charged, RnaProtocol::new(n, RnaConfig::default(), 0)).run();
        assert!(slow.wall_time > fast.wall_time);
    }
}
