//! Power-of-`d`-choices initiator sampling (§3.2, Figure 10).
//!
//! Two pieces live here:
//!
//! * [`ProbeRound`] — the controller-side bookkeeping for one probing round:
//!   which workers were probed, which reply wins, and when later replies are
//!   expired (the scheduling-conflict rule of §3.2).
//! * [`simulate_response_times`] — the closed-world microbenchmark behind
//!   Figure 10: `n` workers with uniformly skewed readiness, `d` probes per
//!   round, and a per-probe messaging overhead that makes oversampling
//!   counterproductive.

use rna_simnet::{SimDuration, SimRng};

/// Controller-side state for one probing round.
///
/// # Examples
///
/// ```
/// use rna_core::probe::ProbeRound;
/// use rna_simnet::SimRng;
///
/// let mut rng = SimRng::seed(1);
/// let round = ProbeRound::sample(7, 8, 2, &mut rng);
/// assert_eq!(round.round(), 7);
/// assert_eq!(round.probed().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeRound {
    round: u64,
    probed: Vec<usize>,
    winner: Option<usize>,
}

impl ProbeRound {
    /// Samples `d` distinct workers out of `n` for round `round`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` or `d > n`.
    pub fn sample(round: u64, n: usize, d: usize, rng: &mut SimRng) -> Self {
        assert!(d > 0, "need at least one probe");
        assert!(d <= n, "cannot probe more workers than exist");
        ProbeRound {
            round,
            probed: rng.choose_distinct(n, d),
            winner: None,
        }
    }

    /// Builds a probe round from an explicit probe set (used when sampling
    /// must exclude crashed workers).
    ///
    /// # Panics
    ///
    /// Panics if `probed` is empty.
    pub fn from_probed(round: u64, probed: Vec<usize>) -> Self {
        assert!(!probed.is_empty(), "need at least one probe");
        ProbeRound {
            round,
            probed,
            winner: None,
        }
    }

    /// The round this probe set belongs to.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The probed worker ids.
    pub fn probed(&self) -> &[usize] {
        &self.probed
    }

    /// The winning (initiator) worker, if a reply has been accepted.
    pub fn winner(&self) -> Option<usize> {
        self.winner
    }

    /// Offers a reply from `worker` for `round`. Returns `true` iff this
    /// reply is accepted (first matching reply from a probed worker); all
    /// later or mismatched replies are expired, implementing the two cases
    /// of §3.2.
    pub fn offer_reply(&mut self, worker: usize, round: u64) -> bool {
        if round != self.round || self.winner.is_some() || !self.probed.contains(&worker) {
            return false;
        }
        self.winner = Some(worker);
        true
    }
}

/// Figure 10 microbenchmark: per-iteration initiator response times.
///
/// Each of the `iterations` rounds: every one of `n` workers gets a task
/// whose completion skew is a shifted exponential clipped into
/// `[skew_lo, skew_hi)` — the queueing-system view of §3.1, where waiting
/// times are exponential-tailed rather than uniform (this is what makes
/// the second probe pay off so sharply: the minimum of `d` exponentials
/// has `1/d` of the mean). The controller probes `d` random workers; the
/// response time is the earliest probed completion plus messaging overhead
/// that grows with `d` (`per_probe_overhead × d` — issuing, tracking, and
/// expiring probes).
///
/// Returns the response time of every iteration in milliseconds.
///
/// # Panics
///
/// Panics if `d == 0`, `d > n`, or `skew_hi <= skew_lo`.
pub fn simulate_response_times(
    n: usize,
    d: usize,
    iterations: usize,
    skew_lo: SimDuration,
    skew_hi: SimDuration,
    per_probe_overhead: SimDuration,
    rng: &mut SimRng,
) -> Vec<f64> {
    assert!(d > 0 && d <= n, "invalid probe count");
    assert!(skew_hi > skew_lo, "empty skew range");
    let lo = skew_lo.as_millis_f64();
    let span = skew_hi.as_millis_f64() - lo;
    // Mean chosen so ~95% of the mass falls inside the configured range.
    let tail_mean = span / 3.0;
    (0..iterations)
        .map(|_| {
            let earliest = (0..d)
                .map(|_| lo + rng.exponential(tail_mean).min(span))
                .fold(f64::INFINITY, f64::min);
            earliest + (per_probe_overhead * d as u64).as_millis_f64()
        })
        .collect()
}

/// The expected-waiting-time bound quoted in §3.2: with `q` choices and
/// load `rho`, the waiting time is upper-bounded by
/// `Σ_{i≥1} rho^((q^i − q)/(q − 1))` (up to an additive constant). For
/// `q = 1` the geometric series `rho/(1−rho)` is returned.
///
/// # Panics
///
/// Panics if `rho` is not in `[0, 1)` or `q == 0`.
pub fn expected_wait_bound(rho: f64, q: u32) -> f64 {
    assert!((0.0..1.0).contains(&rho), "load must be in [0, 1)");
    assert!(q > 0, "need at least one choice");
    if rho == 0.0 {
        return 0.0;
    }
    if q == 1 {
        return rho / (1.0 - rho);
    }
    let qf = f64::from(q);
    let mut total = 0.0;
    for i in 1..60 {
        let exponent = (qf.powi(i) - qf) / (qf - 1.0);
        let term = rho.powf(exponent);
        total += term;
        if term < 1e-15 {
            break;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rna_tensor::stats::percentile;

    #[test]
    fn probes_are_distinct_and_in_range() {
        let mut rng = SimRng::seed(0);
        for _ in 0..50 {
            let r = ProbeRound::sample(0, 10, 3, &mut rng);
            let mut p = r.probed().to_vec();
            p.sort_unstable();
            p.dedup();
            assert_eq!(p.len(), 3);
            assert!(p.iter().all(|&w| w < 10));
        }
    }

    #[test]
    fn first_reply_wins_second_expires() {
        let mut rng = SimRng::seed(1);
        let mut r = ProbeRound::sample(5, 4, 2, &mut rng);
        let (a, b) = (r.probed()[0], r.probed()[1]);
        assert!(r.offer_reply(a, 5));
        assert_eq!(r.winner(), Some(a));
        // The slower probed worker's reply is expired (case 1 of §3.2).
        assert!(!r.offer_reply(b, 5));
        assert_eq!(r.winner(), Some(a));
    }

    #[test]
    fn mismatched_round_or_unprobed_worker_is_rejected() {
        let mut rng = SimRng::seed(2);
        let mut r = ProbeRound::sample(3, 4, 2, &mut rng);
        let unprobed = (0..4).find(|w| !r.probed().contains(w)).unwrap();
        assert!(!r.offer_reply(unprobed, 3));
        let probed = r.probed()[0];
        assert!(!r.offer_reply(probed, 2)); // stale round id
        assert!(r.offer_reply(probed, 3));
    }

    #[test]
    #[should_panic(expected = "cannot probe")]
    fn sampling_more_probes_than_workers_panics() {
        ProbeRound::sample(0, 2, 3, &mut SimRng::seed(0));
    }

    #[test]
    fn two_choices_beat_one_choice() {
        // The headline of Figure 10.
        let mut rng = SimRng::seed(42);
        let lo = SimDuration::from_millis(10);
        let hi = SimDuration::from_millis(50);
        let overhead = SimDuration::from_micros(500);
        let one = simulate_response_times(100, 1, 500, lo, hi, overhead, &mut rng);
        let two = simulate_response_times(100, 2, 500, lo, hi, overhead, &mut rng);
        assert!(
            percentile(&two, 0.5) < percentile(&one, 0.5) * 0.85,
            "d=2 median {} vs d=1 median {}",
            percentile(&two, 0.5),
            percentile(&one, 0.5)
        );
        // Variance also shrinks (the paper's second observation).
        let spread = |xs: &[f64]| percentile(xs, 0.75) - percentile(xs, 0.25);
        assert!(spread(&two) < spread(&one));
    }

    #[test]
    fn oversampling_stops_helping() {
        // With per-probe overhead, large d loses to d=2 (§8.4).
        let mut rng = SimRng::seed(7);
        let lo = SimDuration::from_millis(10);
        let hi = SimDuration::from_millis(50);
        let overhead = SimDuration::from_millis(4);
        let median = |d: usize, rng: &mut SimRng| {
            let xs = simulate_response_times(100, d, 800, lo, hi, overhead, rng);
            percentile(&xs, 0.5)
        };
        let m2 = median(2, &mut rng);
        let m8 = median(8, &mut rng);
        assert!(m8 > m2, "d=8 median {m8} should exceed d=2 median {m2}");
    }

    #[test]
    fn wait_bound_decreases_in_q() {
        let rho = 0.9;
        let w1 = expected_wait_bound(rho, 1);
        let w2 = expected_wait_bound(rho, 2);
        let w3 = expected_wait_bound(rho, 3);
        assert!(w2 < w1);
        assert!(w3 < w2);
        // Exponential improvement: the gap 1→2 dwarfs 2→3 relatively.
        assert!(w1 / w2 > 2.0);
    }

    #[test]
    fn wait_bound_zero_load_is_zero() {
        assert_eq!(expected_wait_bound(0.0, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "load")]
    fn wait_bound_rejects_full_load() {
        expected_wait_bound(1.0, 2);
    }
}
