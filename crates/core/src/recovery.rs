//! Crash-consistent checkpointing and control-plane recovery primitives.
//!
//! The paper assumes the central scheduler and the parameter server never
//! fail (§4: the controller is "stateless" precisely so that losing it is
//! survivable). This module supplies the machinery that makes that
//! assumption safe to lift:
//!
//! * [`CheckpointStore`] — an atomic, checksummed, versioned on-disk store
//!   for checkpoint payloads. Writes go to a temp file and are `rename`d
//!   into place so a crash mid-write can never corrupt the latest good
//!   checkpoint; the previous generation is kept as a fallback and
//!   [`CheckpointStore::load_latest`] silently falls back to it when the
//!   newest file is truncated or fails its checksum.
//! * [`RoundJournal`] — an append-only record of completed probe rounds
//!   (round id, initiator, contributor count). A warm-standby controller
//!   replays it after the latest checkpoint to recover the round counter
//!   it must resume from.
//! * [`RecoveryConfig`] — the checkpoint cadence, validated at
//!   construction like [`ToleranceConfig`](crate::fault::ToleranceConfig).
//! * [`RecoveryError`] — a typed error distinguishing I/O failures from
//!   corruption from a store that has no checkpoint at all.
//!
//! The payload *format* is owned by the callers (the DES engine serializes
//! its full training state, the threaded runtime its controller state);
//! this module owns the framing: an 8-byte magic, a format version, the
//! payload length, and an FNV-1a checksum over the payload.

use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rna_simnet::SimRngState;
use rna_tensor::wire::{self, Reader};

use crate::fault::ConfigError;

/// Magic bytes opening every checkpoint file: "RNACKPT1".
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"RNACKPT1";

/// Current checkpoint framing version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Why a checkpoint could not be loaded.
#[derive(Debug)]
pub enum RecoveryError {
    /// The store directory or a checkpoint file could not be read/written.
    Io(io::Error),
    /// No checkpoint has ever been written to this store.
    Missing,
    /// Every available checkpoint generation failed validation; the string
    /// names the first defect found (bad magic, short file, checksum
    /// mismatch, …).
    Corrupt(String),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            RecoveryError::Missing => write!(f, "no checkpoint found in store"),
            RecoveryError::Corrupt(why) => write!(f, "checkpoint corrupt: {why}"),
        }
    }
}

impl Error for RecoveryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RecoveryError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RecoveryError {
    fn from(e: io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

/// Checkpoint cadence configuration, validated at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Write a checkpoint every this many completed global rounds.
    pub every: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig { every: 10 }
    }
}

impl RecoveryConfig {
    /// Creates a validated cadence.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroCheckpointCadence`] when `every == 0` — a zero
    /// cadence would quiesce the cluster after every round.
    pub fn new(every: u64) -> Result<Self, ConfigError> {
        let config = RecoveryConfig { every };
        config.validate()?;
        Ok(config)
    }

    /// Re-checks the invariants (useful after struct-literal construction).
    ///
    /// # Errors
    ///
    /// Same conditions as [`RecoveryConfig::new`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.every == 0 {
            return Err(ConfigError::ZeroCheckpointCadence);
        }
        Ok(())
    }
}

/// A successfully loaded checkpoint payload.
#[derive(Debug, Clone)]
pub struct LoadedCheckpoint {
    /// The raw payload bytes (caller-owned format).
    pub payload: Vec<u8>,
    /// `true` when the newest generation was damaged and the store fell
    /// back to the previous one.
    pub fell_back: bool,
}

/// An atomic two-generation checkpoint store rooted at one directory.
///
/// Layout: `checkpoint.latest` and `checkpoint.previous`, each a framed
/// payload (magic, version, length, FNV-1a checksum). [`CheckpointStore::save`]
/// writes `checkpoint.tmp` first and renames, demoting the old latest to
/// previous, so there is always at least one intact generation on disk once
/// the first save completes.
///
/// # Examples
///
/// ```no_run
/// use rna_core::recovery::CheckpointStore;
///
/// let store = CheckpointStore::new("/tmp/rna-ckpt").unwrap();
/// store.save(b"state bytes").unwrap();
/// let loaded = store.load_latest().unwrap();
/// assert_eq!(loaded.payload, b"state bytes");
/// ```
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Any error from creating the directory.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir })
    }

    /// Path of the newest checkpoint generation.
    pub fn latest_path(&self) -> PathBuf {
        self.dir.join("checkpoint.latest")
    }

    /// Path of the fallback generation.
    pub fn previous_path(&self) -> PathBuf {
        self.dir.join("checkpoint.previous")
    }

    /// Frames `payload` and writes it atomically, demoting the current
    /// latest generation to the fallback slot.
    ///
    /// # Errors
    ///
    /// Any I/O error from the temp-file write or the renames; on error the
    /// previously written generations are untouched (the temp file may be
    /// left behind, to be overwritten by the next save).
    pub fn save(&self, payload: &[u8]) -> io::Result<()> {
        let mut frame = Vec::with_capacity(payload.len() + 28);
        frame.extend_from_slice(CHECKPOINT_MAGIC);
        wire::put_u32(&mut frame, CHECKPOINT_VERSION);
        wire::put_u64(&mut frame, payload.len() as u64);
        wire::put_u64(&mut frame, wire::fnv1a(payload));
        frame.extend_from_slice(payload);
        let tmp = self.dir.join("checkpoint.tmp");
        fs::write(&tmp, &frame)?;
        let latest = self.latest_path();
        if latest.exists() {
            fs::rename(&latest, self.previous_path())?;
        }
        fs::rename(&tmp, &latest)
    }

    /// Loads the newest intact checkpoint, falling back to the previous
    /// generation when the latest is missing, truncated, or fails its
    /// checksum.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::Missing`] when no generation exists at all;
    /// [`RecoveryError::Corrupt`] when generations exist but none
    /// validates; [`RecoveryError::Io`] for filesystem failures other than
    /// "file not found".
    pub fn load_latest(&self) -> Result<LoadedCheckpoint, RecoveryError> {
        let mut first_defect: Option<String> = None;
        let mut any_present = false;
        for (fell_back, path) in [(false, self.latest_path()), (true, self.previous_path())] {
            match read_frame(&path) {
                Ok(Some(payload)) => {
                    return Ok(LoadedCheckpoint { payload, fell_back });
                }
                Ok(None) => {} // absent: try the next generation
                Err(FrameError::Io(e)) => return Err(RecoveryError::Io(e)),
                Err(FrameError::Corrupt(why)) => {
                    any_present = true;
                    first_defect.get_or_insert_with(|| format!("{}: {why}", path.display()));
                }
            }
        }
        if any_present {
            Err(RecoveryError::Corrupt(
                first_defect.unwrap_or_else(|| "unreadable checkpoint".into()),
            ))
        } else {
            Err(RecoveryError::Missing)
        }
    }
}

enum FrameError {
    Io(io::Error),
    Corrupt(&'static str),
}

/// Reads and validates one framed checkpoint file. `Ok(None)` means the
/// file does not exist (a legitimate state, not corruption).
fn read_frame(path: &Path) -> Result<Option<Vec<u8>>, FrameError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(FrameError::Io(e)),
    };
    if bytes.len() < 28 {
        return Err(FrameError::Corrupt("file shorter than header"));
    }
    if &bytes[..8] != CHECKPOINT_MAGIC {
        return Err(FrameError::Corrupt("bad magic"));
    }
    let mut r = Reader::new(&bytes[8..28]);
    let version = r.u32().expect("header sliced to exact size");
    let len = r.u64().expect("header sliced to exact size");
    let checksum = r.u64().expect("header sliced to exact size");
    if version != CHECKPOINT_VERSION {
        return Err(FrameError::Corrupt("unsupported version"));
    }
    let payload = &bytes[28..];
    if payload.len() as u64 != len {
        return Err(FrameError::Corrupt("payload length mismatch (truncated?)"));
    }
    if wire::fnv1a(payload) != checksum {
        return Err(FrameError::Corrupt("checksum mismatch"));
    }
    Ok(Some(payload.to_vec()))
}

/// One completed probe round, as the journal remembers it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundRecord {
    /// The global round id that completed.
    pub round: u64,
    /// The worker that initiated the partial collective.
    pub initiator: usize,
    /// How many workers contributed non-null gradients.
    pub contributors: u32,
}

/// An append-only journal of completed probe rounds.
///
/// The active controller records every round it completes; a standby
/// taking over replays the journal past the latest checkpoint to learn the
/// next round id. Rounds must be recorded in strictly increasing order —
/// the journal panics on a replayed or reordered round id, since that
/// would mean two controllers believed they were active at once.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundJournal {
    entries: Vec<RoundRecord>,
}

impl RoundJournal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        RoundJournal::default()
    }

    /// Appends a completed round.
    ///
    /// # Panics
    ///
    /// Panics if `round` is not strictly greater than the last recorded
    /// round (a split-brain symptom).
    pub fn record(&mut self, round: u64, initiator: usize, contributors: u32) {
        if let Some(last) = self.entries.last() {
            assert!(
                round > last.round,
                "journal rounds must be strictly increasing ({} after {})",
                round,
                last.round
            );
        }
        self.entries.push(RoundRecord {
            round,
            initiator,
            contributors,
        });
    }

    /// The round a recovering controller must run next: one past the last
    /// completed round, or 0 for an empty journal.
    pub fn next_round(&self) -> u64 {
        self.entries.last().map_or(0, |r| r.round + 1)
    }

    /// Number of journaled rounds.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no round has completed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The journaled records, oldest first.
    pub fn records(&self) -> &[RoundRecord] {
        &self.entries
    }

    /// Serializes the journal into a checkpoint payload.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_u64(out, self.entries.len() as u64);
        for r in &self.entries {
            wire::put_u64(out, r.round);
            wire::put_u64(out, r.initiator as u64);
            wire::put_u32(out, r.contributors);
        }
    }

    /// Deserializes a journal from a checkpoint payload.
    pub fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let n = r.u64()?;
        if n > r.remaining() as u64 / 20 {
            return None; // more records claimed than bytes available
        }
        let mut entries = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let round = r.u64()?;
            let initiator = r.u64()? as usize;
            let contributors = r.u32()?;
            if let Some(last) = entries.last() {
                let last: &RoundRecord = last;
                if round <= last.round {
                    return None;
                }
            }
            entries.push(RoundRecord {
                round,
                initiator,
                contributors,
            });
        }
        Some(RoundJournal { entries })
    }
}

/// Serializes an exact RNG stream position into a checkpoint payload.
pub fn put_rng(out: &mut Vec<u8>, state: &SimRngState) {
    for word in state.key {
        wire::put_u32(out, word);
    }
    wire::put_u64(out, state.counter);
    wire::put_u32(out, state.next_word as u32);
    match state.gauss_spare {
        Some(v) => {
            wire::put_u32(out, 1);
            wire::put_f64(out, v);
        }
        None => wire::put_u32(out, 0),
    }
}

/// Deserializes an RNG stream position written by [`put_rng`].
pub fn read_rng(r: &mut Reader<'_>) -> Option<SimRngState> {
    let mut key = [0u32; 8];
    for word in &mut key {
        *word = r.u32()?;
    }
    let counter = r.u64()?;
    let next_word = r.u32()?;
    if next_word > 16 {
        return None;
    }
    let gauss_spare = match r.u32()? {
        0 => None,
        1 => Some(r.f64()?),
        _ => return None,
    };
    Some(SimRngState {
        key,
        counter,
        next_word: next_word as u8,
        gauss_spare,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rna_simnet::SimRng;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "rna-recovery-test-{}-{tag}-{n}",
            std::process::id()
        ))
    }

    #[test]
    fn save_load_roundtrip() {
        let store = CheckpointStore::new(scratch_dir("roundtrip")).unwrap();
        store.save(b"hello checkpoint").unwrap();
        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.payload, b"hello checkpoint");
        assert!(!loaded.fell_back);
    }

    #[test]
    fn empty_store_reports_missing() {
        let store = CheckpointStore::new(scratch_dir("missing")).unwrap();
        assert!(matches!(store.load_latest(), Err(RecoveryError::Missing)));
    }

    #[test]
    fn corrupted_latest_falls_back_to_previous() {
        let store = CheckpointStore::new(scratch_dir("fallback")).unwrap();
        store.save(b"generation one").unwrap();
        store.save(b"generation two").unwrap();
        // Flip a payload byte in the newest generation.
        let mut bytes = fs::read(store.latest_path()).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(store.latest_path(), &bytes).unwrap();
        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.payload, b"generation one");
        assert!(loaded.fell_back);
    }

    #[test]
    fn truncated_latest_falls_back_to_previous() {
        let store = CheckpointStore::new(scratch_dir("truncated")).unwrap();
        store.save(b"older but intact").unwrap();
        store.save(b"newer and doomed").unwrap();
        let bytes = fs::read(store.latest_path()).unwrap();
        fs::write(store.latest_path(), &bytes[..bytes.len() / 2]).unwrap();
        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.payload, b"older but intact");
        assert!(loaded.fell_back);
    }

    #[test]
    fn all_generations_corrupt_is_a_clean_error() {
        let store = CheckpointStore::new(scratch_dir("allbad")).unwrap();
        store.save(b"one").unwrap();
        store.save(b"two").unwrap();
        fs::write(store.latest_path(), b"garbage").unwrap();
        fs::write(store.previous_path(), b"more garbage").unwrap();
        match store.load_latest() {
            Err(RecoveryError::Corrupt(why)) => {
                assert!(why.contains("shorter") || why.contains("magic"), "{why}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_corrupt_not_panic() {
        let store = CheckpointStore::new(scratch_dir("magic")).unwrap();
        store.save(b"payload").unwrap();
        let mut bytes = fs::read(store.latest_path()).unwrap();
        bytes[0] = b'X';
        fs::write(store.latest_path(), &bytes).unwrap();
        assert!(matches!(
            store.load_latest(),
            Err(RecoveryError::Corrupt(_))
        ));
    }

    #[test]
    fn cadence_validation() {
        assert!(RecoveryConfig::new(5).is_ok());
        assert!(matches!(
            RecoveryConfig::new(0),
            Err(ConfigError::ZeroCheckpointCadence)
        ));
    }

    #[test]
    fn journal_tracks_next_round() {
        let mut j = RoundJournal::new();
        assert_eq!(j.next_round(), 0);
        j.record(0, 2, 3);
        j.record(1, 0, 4);
        assert_eq!(j.next_round(), 2);
        assert_eq!(j.len(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn journal_rejects_replayed_round() {
        let mut j = RoundJournal::new();
        j.record(3, 0, 1);
        j.record(3, 1, 2);
    }

    #[test]
    fn journal_wire_roundtrip() {
        let mut j = RoundJournal::new();
        j.record(0, 1, 4);
        j.record(1, 3, 2);
        j.record(5, 0, 4);
        let mut buf = Vec::new();
        j.encode_into(&mut buf);
        let mut r = Reader::new(&buf);
        let back = RoundJournal::decode(&mut r).unwrap();
        assert_eq!(back, j);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn journal_decode_rejects_absurd_length() {
        let mut buf = Vec::new();
        wire::put_u64(&mut buf, u64::MAX);
        assert!(RoundJournal::decode(&mut Reader::new(&buf)).is_none());
    }

    #[test]
    fn rng_state_wire_roundtrip_resumes_stream() {
        let mut rng = SimRng::seed(42);
        for _ in 0..7 {
            rng.uniform_f64(0.0..1.0);
        }
        let _ = rng.normal_std(); // leave a Box-Muller spare cached
        let mut buf = Vec::new();
        put_rng(&mut buf, &rng.state());
        let state = read_rng(&mut Reader::new(&buf)).unwrap();
        let mut restored = SimRng::from_state(&state);
        for _ in 0..32 {
            assert_eq!(
                rng.uniform_u64(0..u64::MAX),
                restored.uniform_u64(0..u64::MAX)
            );
        }
    }
}
