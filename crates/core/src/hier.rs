//! Hierarchical synchronization for deterministic heterogeneity (§4).
//!
//! The cluster is partitioned into speed-homogeneous groups
//! ([`crate::grouping::partition_groups`]); each group runs RNA internally
//! ([`crate::rna::GroupState`]). Each group is then "a node in the
//! traditional PS": the paper's three-phase exchange becomes
//!
//! 1. the group's round produces a reduced gradient (intra-group partial
//!    AllReduce), which the round's initiator **pushes** to the parameter
//!    server;
//! 2. the server **applies** the gradient to its master parameters
//!    ("the averaged gradients among each group is applied to update
//!    models using parameter server", §4) — plain summation work, which is
//!    what §6 says the PS executes;
//! 3. the initiator **pulls** the refreshed master back and **broadcasts**
//!    it inside the group.
//!
//! Groups do this asynchronously — a slow group's push simply lands on the
//! master later, exactly like a slow worker in an asynchronous parameter
//! server — so the deterministic tier gap never stalls the fast tier, and
//! because every push applies to the *latest* master there is no
//! stale-parameter mixing: staleness is confined to the gradients, where
//! the §5 analysis bounds it.
//!
//! With an exchange cadence above 1 ([`HierRnaProtocol::with_ps_every`]),
//! intermediate rounds apply updates group-locally as a preview and the
//! accumulated gradient is pushed at the next exchange; the broadcast then
//! replaces the preview with the master view.

use rna_simnet::SimDuration;
use rna_tensor::Tensor;

use rna_ps::ReplicatedGroupServer;

use crate::cache::GradientCache;
use crate::grouping::{group_of, partition_groups};
use crate::membership::{
    hetero_ratio, regroup_decision, ChurnEvent, RegroupPolicy, SpeedEstimator,
};
use crate::rna::{GroupState, RnaMsg};
use crate::sim::{Ctx, Protocol, TrainSpec};
use crate::RnaConfig;

/// Hierarchical RNA: per-group randomized non-blocking AllReduce with
/// asynchronous inter-group gradient exchange through a parameter server.
///
/// # Examples
///
/// ```
/// use rna_core::hier::HierRnaProtocol;
/// use rna_core::sim::{Engine, TrainSpec};
/// use rna_core::RnaConfig;
/// use rna_workload::HeterogeneityModel;
///
/// let n = 6;
/// let spec = TrainSpec::smoke_test(n, 4)
///     .with_hetero(HeterogeneityModel::mixed_groups(n, 0, 10, 40, 50))
///     .with_max_rounds(30);
/// let protocol = HierRnaProtocol::auto(&spec, RnaConfig::default());
/// assert!(protocol.num_groups() >= 2);
/// let result = Engine::new(spec, protocol).run();
/// assert!(result.global_rounds > 0);
/// ```
pub struct HierRnaProtocol {
    config: RnaConfig,
    groups: Vec<GroupState>,
    worker_group: Vec<usize>,
    /// The asynchronous master parameters (the PS state). Deliberately kept
    /// as the broadcast source even under PS-shard faults: the master is
    /// the analytic model of the exchange, the replicated server below
    /// mirrors it per slot — so fault-free runs stay bit-identical.
    master: Option<Tensor>,
    /// Slot bookkeeping (per-group versions/staleness diagnostics), each
    /// slot mirrored to a warm replica with read-repair on pull.
    server: Option<ReplicatedGroupServer>,
    /// Accumulated `Σ scale·ḡ` per group since its last exchange.
    pending: Vec<Option<Tensor>>,
    /// Group rounds between PS exchanges.
    ps_every: u64,
    /// Exchanges each group skipped because the PS was unreachable
    /// (partition). Reset when the group reconciles on heal.
    missed_exchanges: Vec<u64>,
    /// Which [`crate::fault::FaultPlan::ps_shard_crashes`] entries have
    /// already fired (sized lazily in `on_start`).
    ps_crashes_done: Vec<bool>,
    /// Per-group error-feedback residuals for the lossy PS push (the pull
    /// stays full-precision — the master must reach every group exactly).
    ps_residuals: Vec<Option<Tensor>>,
    /// Reusable encode scratch for the PS push.
    codec_buf: Vec<u8>,
    /// Workers that left via the churn plan (retired or evicted). Their
    /// engine may still deliver an in-flight `ComputeDone` after the
    /// departure edge; the gradient is discarded at the protocol level.
    departed: Vec<bool>,
    /// Planned joiners already admitted (each join fires exactly once,
    /// even when a topology swap jumps a group's round clock past the
    /// join round).
    joined: Vec<bool>,
    /// Per-worker EWMA of observed compute times — the live counterpart
    /// of the launch-time probe the §4 split keys off. Fed on every
    /// `ComputeDone` while a regroup policy is armed.
    speed: SpeedEstimator,
    /// Online-regroup policy; `None` (the default) disables regrouping
    /// entirely, leaving pre-existing runs untouched.
    policy: Option<RegroupPolicy>,
    /// Completed group-round edges across all groups — the clock the
    /// regroup cadence runs on.
    round_edges: u64,
    /// `round_edges` at the last committed topology swap.
    last_swap_edge: u64,
    /// Heterogeneity ratio at the last committed grouping (negative until
    /// first measured).
    last_ratio: f64,
    /// An armed topology swap: the proposed grouping and the measured
    /// ratio that justified it. While set, every group quiesces; the swap
    /// commits atomically once all groups are drained.
    pending_regroup: Option<(Vec<Vec<usize>>, f64)>,
}

impl HierRnaProtocol {
    /// Creates the protocol with an explicit grouping.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty, any group is empty, or worker ids are
    /// not a partition of `0..n` for some `n`.
    pub fn new(groups: Vec<Vec<usize>>, config: RnaConfig) -> Self {
        assert!(!groups.is_empty(), "need at least one group");
        let n: usize = groups.iter().map(Vec::len).sum();
        let worker_group = group_of(&groups, n);
        let num_groups = groups.len();
        let groups = groups
            .into_iter()
            .enumerate()
            .map(|(id, members)| GroupState::new(id, members, &config))
            .collect();
        HierRnaProtocol {
            config,
            groups,
            worker_group,
            master: None,
            server: None,
            pending: vec![None; num_groups],
            ps_every: 1,
            missed_exchanges: vec![0; num_groups],
            ps_crashes_done: Vec::new(),
            ps_residuals: vec![None; num_groups],
            codec_buf: Vec::new(),
            departed: vec![false; n],
            joined: vec![false; n],
            speed: SpeedEstimator::new(n, RegroupPolicy::default().alpha),
            policy: None,
            round_edges: 0,
            last_swap_edge: 0,
            last_ratio: -1.0,
            pending_regroup: None,
        }
    }

    /// Derives the grouping from the spec's heterogeneity model using the
    /// ζ > v recursion over expected per-iteration times.
    pub fn auto(spec: &TrainSpec, config: RnaConfig) -> Self {
        let nominal = spec.profile.compute.mean(8.0);
        let times: Vec<SimDuration> = (0..spec.num_workers)
            .map(|w| spec.hetero.expected(w, nominal))
            .collect();
        HierRnaProtocol::new(partition_groups(&times), config)
    }

    /// Sets how many group rounds pass between PS exchanges (default 1 —
    /// the §6 exchange frequency knob).
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn with_ps_every(mut self, every: u64) -> Self {
        assert!(every > 0, "PS cadence must be positive");
        self.ps_every = every;
        self
    }

    /// Arms online regrouping: per-worker EWMA speed estimates feed the
    /// §4 ζ-split whenever the policy's cadence comes due and the measured
    /// heterogeneity has drifted; a differing split is committed as an
    /// atomic topology swap at a cluster-wide quiesce point.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid ([`RegroupPolicy::validate`]).
    pub fn with_regroup_policy(mut self, policy: RegroupPolicy) -> Self {
        policy.validate().expect("invalid regroup policy");
        self.speed = SpeedEstimator::new(self.worker_group.len(), policy.alpha);
        self.policy = Some(policy);
        self
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The members of each group.
    pub fn group_members(&self) -> Vec<Vec<usize>> {
        self.groups.iter().map(|g| g.members.clone()).collect()
    }

    /// How many master updates group `gid` has missed since its last push
    /// (0 before the first exchange).
    pub fn group_staleness(&self, gid: usize) -> u64 {
        self.server.as_ref().map_or(0, |s| s.staleness(gid))
    }

    /// PS shard primaries that crashed and degraded to their replica.
    pub fn ps_failovers(&self) -> u64 {
        self.server.as_ref().map_or(0, |s| s.failovers())
    }

    /// Mirror copies the PS refreshed by read-repair.
    pub fn ps_read_repairs(&self) -> u64 {
        self.server.as_ref().map_or(0, |s| s.read_repairs())
    }

    /// Fires any planned PS-shard crash scheduled for this group at its
    /// current round: the slot's primary dies and the exchange degrades to
    /// the warm mirror. Each plan entry fires exactly once.
    fn maybe_crash_ps_shard(&mut self, ctx: &mut Ctx<'_, RnaMsg>, gid: usize) {
        if ctx.fault_plan().ps_shard_crashes().is_empty() {
            return;
        }
        let round = self.groups[gid].round();
        let crashes = ctx.fault_plan().ps_shard_crashes().to_vec();
        if self.ps_crashes_done.len() < crashes.len() {
            self.ps_crashes_done.resize(crashes.len(), false);
        }
        for (i, &(shard, at_round)) in crashes.iter().enumerate() {
            if self.ps_crashes_done[i] || shard != gid || at_round != round {
                continue;
            }
            self.ps_crashes_done[i] = true;
            if let Some(server) = self.server.as_mut() {
                if shard < server.num_groups() {
                    server.kill_primary(shard);
                    ctx.note_ps_failover();
                }
            }
        }
    }

    fn accumulate(&mut self, ctx: &mut Ctx<'_, RnaMsg>, gid: usize, reduced: &Tensor, scale: f32) {
        let dim = reduced.len();
        let pooled = self.config.pooled;
        let pending = self.pending[gid].get_or_insert_with(|| {
            // Pooled buffers arrive zeroed, so both arms start the
            // accumulator from exact zero.
            if pooled {
                ctx.pool_mut().acquire(dim)
            } else {
                Tensor::zeros(dim)
            }
        });
        pending.axpy(scale, reduced);
    }

    /// Launches the asynchronous exchange: the accumulated gradient travels
    /// to the PS and the refreshed master comes back, paying push + pull on
    /// the star link plus the intra-group broadcast.
    ///
    /// A gradient accumulated across `missed_exchanges` skipped exchanges
    /// (the group was partitioned from the PS) is reconciled with a
    /// staleness discount — the Hop-style bounded-staleness reading — so a
    /// long-isolated group cannot yank the master with a huge stale sum.
    fn ps_exchange(&mut self, ctx: &mut Ctx<'_, RnaMsg>, gid: usize) {
        let Some(mut grad) = self.pending[gid].take() else {
            return;
        };
        let codec = self.config.compression;
        if !codec.is_lossless() {
            // Lossy push: the PS receives decode(encode(grad + residual));
            // the dropped remainder stays in the group's residual and rides
            // the next push (error feedback).
            let residual = self.ps_residuals[gid].get_or_insert_with(|| Tensor::zeros(grad.len()));
            let rng = ctx.codec_rng();
            let mut draw = || rng.uniform_u64(0..1 << 32) as u32;
            let threads = rna_tensor::codec::wire_threads(grad.len());
            let (_, err) = rna_tensor::codec::encode_with_feedback_mt(
                codec,
                &mut grad,
                residual,
                &mut self.codec_buf,
                &mut draw,
                threads,
            );
            ctx.note_codec_error(err);
        }
        // The master applies the gradient at *send* time: the PS serializes
        // pushes, so the state the group later broadcasts already includes
        // this contribution plus whatever other groups landed meanwhile.
        let missed = std::mem::take(&mut self.missed_exchanges[gid]);
        let lr = ctx.current_lr() * rna_ps::staleness_discount(missed);
        let master = self.master.as_mut().expect("master set in on_start");
        master.axpy(-lr, &grad);
        if let Some(server) = self.server.as_mut() {
            server.push(gid, master);
            // The pull half of the exchange read-repairs the slot's mirror,
            // so a later primary crash degrades to this round's value.
            let _ = server.pull_slot(gid);
        }
        // The broadcast payload snapshots the master; on the pooled path
        // both it and the drained accumulator cycle through the pool.
        let blended = if self.config.pooled {
            let mut b = ctx.pool_mut().acquire(master.len());
            b.copy_from(master);
            b
        } else {
            master.clone()
        };
        if self.config.pooled {
            ctx.pool_release(grad);
        }
        let bytes = ctx.grad_bytes();
        let cost = ctx.cost();
        let group_size = self.groups[gid].members.len();
        // The push travels encoded; the pull (refreshed master) is always
        // full precision. Lossless takes the legacy formulas verbatim.
        let push_bytes = if codec.is_lossless() {
            bytes
        } else {
            codec.frame_bytes((bytes / 4) as usize)
        };
        let duration = cost.point_to_point(push_bytes)
            + cost.point_to_point(bytes)
            + cost.ring_broadcast(group_size, bytes);
        ctx.charge_bytes(push_bytes + bytes);
        ctx.note_wire_bytes(push_bytes + bytes, bytes * 2);
        ctx.send_after(
            ctx.controller_id(),
            duration,
            RnaMsg::PsDone {
                group: gid,
                blended,
            },
        );
    }

    /// Round-edge hook shared by the immediate and deferred (PS-exchange)
    /// completion paths: process planned churn for the group, run the
    /// online regroup check, and — unless a topology swap is draining or
    /// just committed — resume the group into its next probe round.
    fn after_round_edge(&mut self, ctx: &mut Ctx<'_, RnaMsg>, gid: usize) {
        self.round_edges += 1;
        self.process_churn(ctx, gid);
        if self.pending_regroup.is_none() {
            self.maybe_regroup(ctx);
        }
        if self.pending_regroup.is_some() {
            // A swap is armed: hold this group at its edge (no new probe
            // round) and commit once every group has drained. The commit
            // itself restarts every group.
            self.try_commit_regroup(ctx);
            return;
        }
        let config = &self.config;
        if let Some(g) = self.groups.get_mut(gid) {
            g.resume_paused(ctx, config);
            if !ctx.stopped() {
                g.start_probe_round(ctx, config);
            }
        }
    }

    /// Applies the churn plan's events for members of group `gid`, called
    /// right after `complete_round` bumped the group round. Comparisons
    /// are `>=` with once-flags rather than exact equality because a
    /// committed topology swap aligns every group to the maximum round —
    /// events falling inside the jumped-over range must still fire.
    fn process_churn(&mut self, ctx: &mut Ctx<'_, RnaMsg>, gid: usize) {
        let events: Vec<(usize, ChurnEvent)> = ctx.churn_plan().events().to_vec();
        if events.is_empty() {
            return;
        }
        let next = self.groups[gid].round();
        for (w, ev) in events {
            if self.worker_group[w] != gid {
                continue;
            }
            match ev {
                ChurnEvent::Retire { at_round } => {
                    if next > at_round && !self.departed[w] {
                        self.groups[gid].depart(&self.config, w);
                        self.departed[w] = true;
                        self.speed.forget(w);
                        ctx.note_worker_retired(w, at_round);
                    }
                }
                ChurnEvent::Evict { at_round } => {
                    if next >= at_round && !self.departed[w] {
                        self.groups[gid].depart(&self.config, w);
                        self.departed[w] = true;
                        self.speed.forget(w);
                        ctx.note_worker_evicted(w, at_round);
                    }
                }
                ChurnEvent::Join { at_round, .. } => {
                    if next >= at_round && !self.joined[w] {
                        self.joined[w] = true;
                        let snapshot_bytes = 4 * ctx.params(w).len() as u64;
                        if self.groups[gid].live_members().is_empty() {
                            // No live peer to donate parameters: stream
                            // the master directly.
                            if let Some(master) = self.master.as_ref() {
                                ctx.set_params(w, master);
                            }
                        }
                        self.groups[gid].handle_rejoin(ctx, &self.config, w);
                        ctx.charge_bytes(snapshot_bytes);
                        ctx.note_worker_joined(w, snapshot_bytes);
                    }
                }
            }
        }
    }

    /// The online-regroup check (§4, run live): when the policy's cadence
    /// is due, every active worker's EWMA estimate is trusted, and the
    /// heterogeneity ratio has drifted past the threshold, re-run the
    /// ζ-split over the estimates. A split that differs from the current
    /// grouping arms a pending swap and quiesces every group.
    fn maybe_regroup(&mut self, ctx: &mut Ctx<'_, RnaMsg>) {
        let Some(policy) = self.policy else { return };
        if ctx.stopped() || !policy.due(self.round_edges, self.last_swap_edge) {
            return;
        }
        let mut members: Vec<usize> = self
            .groups
            .iter()
            .flat_map(GroupState::live_members)
            .collect();
        members.sort_unstable();
        if members.len() < 2 || self.speed.min_samples(&members) < policy.min_samples {
            return;
        }
        let Some(times) = self.speed.estimates(&members) else {
            return;
        };
        let ratio = hetero_ratio(&times);
        if self.last_ratio >= 0.0 && (ratio - self.last_ratio).abs() < policy.drift_threshold {
            return;
        }
        let current: Vec<Vec<usize>> = self
            .groups
            .iter()
            .map(GroupState::live_members)
            .filter(|m| !m.is_empty())
            .collect();
        match regroup_decision(&current, &members, &times) {
            Some(proposal) => {
                self.pending_regroup = Some((proposal, ratio));
                for g in &mut self.groups {
                    g.begin_quiesce();
                }
            }
            None => {
                // The split agrees with the current grouping: record the
                // ratio as the new baseline so only further drift re-arms
                // the check.
                self.last_ratio = ratio;
            }
        }
    }

    /// Commits the armed topology swap once every group is drained: flush
    /// pending PS accumulators into the master (nothing contributed is
    /// lost), transplant gradient caches into the new layout, rebuild the
    /// group states aligned to the maximum round, rebalance the PS shard
    /// keys from the replica-backed blend, and restart every group.
    /// Returns whether the swap committed.
    fn try_commit_regroup(&mut self, ctx: &mut Ctx<'_, RnaMsg>) -> bool {
        if self.pending_regroup.is_none() {
            return false;
        }
        if ctx.stopped() {
            // The run ended mid-drain: abandon the swap.
            self.pending_regroup = None;
            for g in &mut self.groups {
                g.end_quiesce();
            }
            return false;
        }
        if !self.groups.iter().all(|g| g.idle_for_swap(ctx)) {
            return false;
        }
        let (mut layout, ratio) = self
            .pending_regroup
            .take()
            .expect("checked non-empty above");
        // 1. Flush every group's pending accumulator into the master, so
        //    gradients contributed before the swap survive it. The flush
        //    is full-precision (no codec): the owed error-feedback
        //    residuals are dropped with the old layout — a bounded, rare
        //    loss the swap accepts.
        let master = self.master.as_mut().expect("master set in on_start");
        for gid in 0..self.pending.len() {
            if let Some(grad) = self.pending[gid].take() {
                let missed = std::mem::take(&mut self.missed_exchanges[gid]);
                let lr = ctx.current_lr() * rna_ps::staleness_discount(missed);
                master.axpy(-lr, &grad);
                if self.config.pooled {
                    ctx.pool_release(grad);
                }
            }
        }
        // 2. Steal every worker's cache and liveness so accumulated but
        //    unreduced work crosses the swap.
        let n = self.worker_group.len();
        let mut caches: Vec<Option<GradientCache>> = (0..n).map(|_| None).collect();
        let mut live = vec![false; n];
        for g in &mut self.groups {
            for w in g.members.clone() {
                live[w] = g.is_live(w);
                caches[w] = g.take_cache(&self.config, w);
            }
        }
        // 3. The proposal covers live members only; park every other
        //    identity (dormant joiners, departed, crashed) in the smallest
        //    group, deterministically (ties break to the lowest index).
        for w in 0..n {
            if !layout.iter().any(|g| g.contains(&w)) {
                let target = (0..layout.len())
                    .min_by_key(|&i| (layout[i].len(), i))
                    .expect("regroup proposal has at least one group");
                layout[target].push(w);
            }
        }
        // 4. Rebuild the group states on the new layout, aligned to the
        //    maximum old round so the global round clock never runs
        //    backwards, with caches transplanted and non-live members
        //    dormant.
        let round = self.groups.iter().map(GroupState::round).max().unwrap_or(0);
        self.groups = layout
            .iter()
            .enumerate()
            .map(|(id, members)| GroupState::new(id, members.clone(), &self.config))
            .collect();
        self.worker_group = group_of(&layout, n);
        let k = self.groups.len();
        self.pending = vec![None; k];
        self.missed_exchanges = vec![0; k];
        self.ps_residuals = vec![None; k];
        for g in &mut self.groups {
            for w in g.members.clone() {
                if let Some(cache) = caches[w].take() {
                    g.adopt_cache(w, cache);
                }
                if !live[w] {
                    g.set_dormant(w);
                }
            }
            g.recover_for_takeover(round);
        }
        // 5. Rebalance the PS shard keys: every slot reseeds from the
        //    replica-backed blend already folded into the master, so no
        //    pull can wedge on a dead primary mid-handoff.
        let master = self.master.as_ref().expect("master set in on_start");
        let moved = self.server.as_mut().map_or(0, |s| s.rebalance(master, k));
        ctx.note_regroup(moved);
        self.last_swap_edge = self.round_edges;
        self.last_ratio = ratio;
        // 6. Atomic swap done: restart every group's compute and election.
        let config = &self.config;
        for g in &mut self.groups {
            g.resume_all(ctx, config);
            g.start_probe_round(ctx, config);
        }
        true
    }
}

impl Protocol for HierRnaProtocol {
    type Msg = RnaMsg;

    fn name(&self) -> &'static str {
        "rna-hier"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, RnaMsg>) {
        assert_eq!(
            self.worker_group.len(),
            ctx.num_workers(),
            "grouping must cover exactly the spec's workers"
        );
        self.master = Some(ctx.params(0));
        self.server = Some(ReplicatedGroupServer::new(ctx.params(0), self.groups.len()));
        self.ps_crashes_done = vec![false; ctx.fault_plan().ps_shard_crashes().len()];
        for w in 0..ctx.num_workers() {
            if ctx.churn_plan().join_of(w).is_some() {
                // Planned joiner: dormant until its admission round.
                self.groups[self.worker_group[w]].set_dormant(w);
            } else {
                ctx.begin_compute(w);
            }
        }
        for g in &mut self.groups {
            g.start_probe_round(ctx, &self.config);
        }
    }

    fn on_compute_done(&mut self, ctx: &mut Ctx<'_, RnaMsg>, worker: usize, iter: u64) {
        if self.departed[worker] {
            // The worker left at a round edge while this iteration was in
            // flight; its gradient no longer has a home.
            let _ = ctx.take_gradient(worker);
            return;
        }
        if self.policy.is_some() {
            if let Some(took) = ctx.last_compute_time(worker) {
                self.speed.observe(worker, took);
            }
        }
        let gid = self.worker_group[worker];
        self.groups[gid].handle_compute_done(ctx, &self.config, worker, iter);
        if self.pending_regroup.is_some() {
            self.try_commit_regroup(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, RnaMsg>, _from: usize, to: usize, msg: RnaMsg) {
        // A committed topology swap may shrink the group count; messages
        // addressed to a no-longer-existing group id are stale by
        // definition and expire here.
        match msg {
            RnaMsg::Probe { group, round } => {
                let config = &self.config;
                if let Some(g) = self.groups.get_mut(group) {
                    g.handle_probe(ctx, config, to, round);
                }
            }
            RnaMsg::ProbeReply {
                group,
                round,
                worker,
            } => {
                let config = &self.config;
                if let Some(g) = self.groups.get_mut(group) {
                    g.handle_reply(ctx, config, worker, round);
                }
            }
            RnaMsg::ReduceDone { group, round } => {
                let Some((reduced, contributors, applied)) = self
                    .groups
                    .get_mut(group)
                    .and_then(|g| g.take_reduce_result(round))
                else {
                    return;
                };
                let scale = if self.config.dynamic_lr_scaling {
                    contributors as f32
                } else {
                    1.0
                };
                // Delta-sample the alloc hook around the data-path work
                // (accumulate, exchange, apply) but not the round advance,
                // whose compute launches allocate on the out-of-scope
                // compute path.
                self.maybe_crash_ps_shard(ctx, group);
                let allocs_before = rna_tensor::alloc::count();
                self.accumulate(ctx, group, &reduced, scale);
                let exchange = (self.groups[group].round() + 1).is_multiple_of(self.ps_every);
                let ps_reachable = self.groups[group]
                    .representative()
                    .is_some_and(|rep| ctx.link_up(rep, ctx.ps_id()));
                let deferred = exchange && ps_reachable;
                if deferred {
                    self.ps_exchange(ctx, group);
                } else {
                    if exchange {
                        // The group is cut off from the PS: keep training on
                        // the local accumulation and reconcile on heal.
                        ctx.note_partition_round();
                        self.missed_exchanges[group] += 1;
                    }
                    // Preview the update group-locally; the accumulated
                    // gradient reaches the master at the next exchange.
                    self.groups[group].apply_reduce(
                        ctx,
                        &self.config,
                        &reduced,
                        contributors,
                        &applied,
                    );
                }
                if self.config.pooled {
                    ctx.pool_release(reduced);
                }
                ctx.note_datapath_allocs(rna_tensor::alloc::count() - allocs_before);
                if deferred {
                    // Defer the round advance until the master broadcast
                    // returns.
                    self.groups[group].advance_round_deferred(contributors);
                } else {
                    self.groups[group].complete_round(ctx, contributors);
                    self.after_round_edge(ctx, group);
                }
            }
            RnaMsg::ProbeRetry {
                group,
                round,
                attempt,
            } => {
                let config = &self.config;
                if let Some(g) = self.groups.get_mut(group) {
                    g.handle_probe_retry(ctx, config, round, attempt);
                }
            }
            RnaMsg::PsDone { group, blended } => {
                // A group with a deferred round always survives the swap
                // untouched (`idle_for_swap` refuses to commit while one
                // is outstanding), so a valid id here is never stale.
                if group >= self.groups.len() {
                    if self.config.pooled {
                        ctx.pool_release(blended);
                    }
                    return;
                }
                let allocs_before = rna_tensor::alloc::count();
                for &w in &self.groups[group].members.clone() {
                    ctx.set_params(w, &blended);
                }
                if self.config.pooled {
                    ctx.pool_release(blended);
                }
                ctx.note_datapath_allocs(rna_tensor::alloc::count() - allocs_before);
                if let Some(contributors) = self.groups[group].take_deferred() {
                    self.groups[group].complete_round(ctx, contributors);
                    self.after_round_edge(ctx, group);
                }
            }
            RnaMsg::StandbyTakeover { .. } => {
                // Controller failover is modeled for flat RNA only; the
                // hierarchical protocol never arms this timer.
            }
        }
    }

    fn on_crash(&mut self, ctx: &mut Ctx<'_, RnaMsg>, worker: usize) {
        let gid = self.worker_group[worker];
        // The crashed worker's estimate is history; it re-earns trust
        // after a restart.
        self.speed.forget(worker);
        self.groups[gid].handle_crash(ctx, &self.config, worker);
        if self.pending_regroup.is_some() {
            // The crashed member no longer gates the drain.
            self.try_commit_regroup(ctx);
        }
    }

    fn on_rejoin(&mut self, ctx: &mut Ctx<'_, RnaMsg>, worker: usize) {
        let gid = self.worker_group[worker];
        self.groups[gid].handle_rejoin(ctx, &self.config, worker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Engine;
    use rna_workload::HeterogeneityModel;

    fn mixed_spec(n: usize, seed: u64, rounds: u64) -> TrainSpec {
        TrainSpec::smoke_test(n, seed)
            .with_hetero(HeterogeneityModel::mixed_groups(n, 0, 10, 50, 60))
            .with_max_rounds(rounds)
    }

    #[test]
    fn auto_grouping_splits_mixed_cluster() {
        let spec = mixed_spec(8, 1, 10);
        let p = HierRnaProtocol::auto(&spec, RnaConfig::default());
        assert_eq!(p.num_groups(), 2);
        let members = p.group_members();
        // First half (fast) together, second half (slow) together.
        let mut g0 = members[0].clone();
        g0.sort_unstable();
        let mut g1 = members[1].clone();
        g1.sort_unstable();
        let (fast, slow) = if g0.contains(&0) { (g0, g1) } else { (g1, g0) };
        assert_eq!(fast, vec![0, 1, 2, 3]);
        assert_eq!(slow, vec![4, 5, 6, 7]);
    }

    #[test]
    fn hier_lossy_codec_shrinks_wire_and_replays_identically() {
        use rna_tensor::Compression;
        let run = |codec| {
            let spec = mixed_spec(6, 3, 60);
            let p = HierRnaProtocol::auto(&spec, RnaConfig::default().with_compression(codec));
            Engine::new(spec, p).run()
        };
        let lossless = run(Compression::Lossless);
        let fp16a = run(Compression::Fp16);
        let fp16b = run(Compression::Fp16);
        assert_eq!(fp16a.wall_time, fp16b.wall_time);
        assert_eq!(fp16a.comm_bytes, fp16b.comm_bytes);
        assert_eq!(fp16a.final_loss(), fp16b.final_loss());
        assert!(
            fp16a.bytes_on_wire < lossless.bytes_on_wire,
            "fp16 wire {} vs lossless {}",
            fp16a.bytes_on_wire,
            lossless.bytes_on_wire
        );
        assert!(fp16a.bytes_saved > 0);
        assert_eq!(lossless.codec_error_l2, 0.0);
        assert!(fp16a.codec_error_l2 > 0.0);
    }

    #[test]
    fn hier_trains_and_converges() {
        let spec = mixed_spec(6, 3, 120);
        let p = HierRnaProtocol::auto(&spec, RnaConfig::default());
        let r = Engine::new(spec, p).run();
        assert!(r.global_rounds >= 100);
        let pts = r.history.points();
        assert!(
            pts.last().unwrap().loss < pts[0].loss,
            "{} -> {}",
            pts[0].loss,
            pts.last().unwrap().loss
        );
    }

    #[test]
    fn hier_is_deterministic() {
        let run = || {
            let spec = mixed_spec(6, 9, 60);
            let p = HierRnaProtocol::auto(&spec, RnaConfig::default());
            Engine::new(spec, p).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.final_loss(), b.final_loss());
    }

    #[test]
    fn homogeneous_cluster_stays_one_group() {
        let spec = TrainSpec::smoke_test(4, 2);
        let p = HierRnaProtocol::auto(&spec, RnaConfig::default());
        assert_eq!(p.num_groups(), 1);
    }

    #[test]
    fn ps_cadence_reduces_exchanges() {
        // With ps_every = 4, comm bytes drop relative to ps_every = 1
        // (fewer gradient pushes), all else equal.
        let run = |every| {
            let spec = mixed_spec(6, 5, 60);
            let p = HierRnaProtocol::auto(&spec, RnaConfig::default()).with_ps_every(every);
            Engine::new(spec, p).run()
        };
        let frequent = run(1);
        let sparse = run(4);
        assert!(sparse.comm_bytes < frequent.comm_bytes);
    }

    #[test]
    fn explicit_grouping_is_respected() {
        let p = HierRnaProtocol::new(vec![vec![0, 2], vec![1, 3]], RnaConfig::default());
        assert_eq!(p.num_groups(), 2);
        assert_eq!(p.group_members()[0], vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn empty_grouping_panics() {
        HierRnaProtocol::new(vec![], RnaConfig::default());
    }

    #[test]
    fn gradient_push_preserves_quality() {
        // The async gradient-PS must converge to a quality comparable to
        // flat RNA on the same mixed-heterogeneity run.
        use crate::rna::RnaProtocol;
        let n = 8;
        let spec = |seed| mixed_spec(n, seed, 250);
        let flat = Engine::new(spec(7), RnaProtocol::new(n, RnaConfig::default(), 0)).run();
        let hier = Engine::new(
            spec(7),
            HierRnaProtocol::new(
                vec![(0..4).collect(), (4..8).collect()],
                RnaConfig::default(),
            ),
        )
        .run();
        let f = flat.final_loss().unwrap();
        let h = hier.final_loss().unwrap();
        assert!(h < f * 3.0 + 0.05, "hier {h} vs flat {f}");
    }

    #[test]
    fn ps_shard_crash_degrades_to_replica() {
        use crate::fault::FaultPlan;
        let spec = mixed_spec(6, 11, 60)
            .with_fault_plan(FaultPlan::none().crash_ps_shard(0, 5).crash_ps_shard(1, 9));
        let p = HierRnaProtocol::auto(&spec, RnaConfig::default());
        let r = Engine::new(spec, p).run();
        // The exchange degrades to the mirrors instead of wedging.
        assert_eq!(r.global_rounds, 60);
        assert_eq!(r.ps_failovers, 2);
        let pts = r.history.points();
        assert!(pts.last().unwrap().loss < pts[0].loss);
    }

    #[test]
    fn slow_group_sees_fast_group_progress() {
        let spec = mixed_spec(6, 7, 80);
        let p = HierRnaProtocol::auto(&spec, RnaConfig::default());
        let r = Engine::new(spec, p).run();
        assert!(r.global_rounds >= 60);
        assert!(r.mean_participation() > 0.3);
    }
}
