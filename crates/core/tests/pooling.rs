//! End-to-end guarantees of the pooled reduce data path.
//!
//! Two properties, both over whole training runs in the simulator:
//!
//! 1. **Bit-identity** — `RnaConfig::pooled` toggles only *where buffers
//!    come from*, never the numbers in them: a pooled run and a naive run
//!    with the same seed agree on every reported metric (flat RNA and the
//!    hierarchical protocol alike).
//! 2. **Zero steady-state allocations** — once the pool is warm, reduce
//!    rounds perform no fresh tensor-buffer allocations: a 6× longer run
//!    records exactly the same `datapath_allocs` as a short one, while the
//!    naive path's count keeps growing with the round count. (The
//!    underlying hook is debug-only, so these assertions are exercised by
//!    debug builds and vacuous in release.)

use rna_core::hier::HierRnaProtocol;
use rna_core::rna::RnaProtocol;
use rna_core::sim::{Engine, TrainSpec};
use rna_core::{RnaConfig, RunResult};
use rna_workload::HeterogeneityModel;

fn mixed_spec(n: usize, seed: u64, rounds: u64) -> TrainSpec {
    TrainSpec::smoke_test(n, seed)
        .with_hetero(HeterogeneityModel::mixed_groups(n, 0, 10, 50, 60))
        .with_max_rounds(rounds)
}

fn run_flat(pooled: bool, rounds: u64) -> RunResult {
    let n = 6;
    let spec = mixed_spec(n, 42, rounds);
    let config = RnaConfig::default().with_pooled(pooled);
    Engine::new(spec, RnaProtocol::new(n, config, 0)).run()
}

fn run_hier(pooled: bool, rounds: u64) -> RunResult {
    let n = 6;
    let spec = mixed_spec(n, 11, rounds);
    let config = RnaConfig::default().with_pooled(pooled);
    let protocol = HierRnaProtocol::auto(&spec, config);
    Engine::new(spec, protocol).run()
}

/// Everything except `datapath_allocs` must match exactly — that counter
/// is *supposed* to differ between the two paths.
fn assert_bit_identical(a: &RunResult, b: &RunResult) {
    assert_eq!(a.wall_time, b.wall_time);
    assert_eq!(a.global_rounds, b.global_rounds);
    assert_eq!(a.worker_iterations, b.worker_iterations);
    assert_eq!(a.comm_bytes, b.comm_bytes);
    assert_eq!(a.participation_sum, b.participation_sum);
    assert_eq!(a.final_loss(), b.final_loss());
    assert_eq!(a.final_accuracy(), b.final_accuracy());
    let pa = a.history.points();
    let pb = b.history.points();
    assert_eq!(pa.len(), pb.len());
    for (x, y) in pa.iter().zip(pb) {
        assert_eq!(x.loss, y.loss, "evaluation losses must be bit-identical");
        assert_eq!(x.accuracy, y.accuracy);
    }
}

#[test]
fn pooled_flat_run_is_bit_identical_to_naive() {
    let pooled = run_flat(true, 80);
    let naive = run_flat(false, 80);
    assert_bit_identical(&pooled, &naive);
}

#[test]
fn pooled_hier_run_is_bit_identical_to_naive() {
    let pooled = run_hier(true, 80);
    let naive = run_hier(false, 80);
    assert_bit_identical(&pooled, &naive);
}

#[test]
fn steady_state_rounds_are_allocation_free() {
    if !cfg!(debug_assertions) {
        // The alloc hook is compiled out in release builds.
        return;
    }
    let short = run_flat(true, 20);
    let long = run_flat(true, 120);
    assert!(long.global_rounds > short.global_rounds);
    assert_eq!(
        short.datapath_allocs, long.datapath_allocs,
        "a warm pool must make every extra round allocation-free"
    );
    let naive = run_flat(false, 120);
    assert!(
        naive.datapath_allocs > 10 * long.datapath_allocs.max(1),
        "the naive path allocates per round ({} vs pooled {})",
        naive.datapath_allocs,
        long.datapath_allocs
    );
}

#[test]
fn hier_steady_state_rounds_are_allocation_free() {
    if !cfg!(debug_assertions) {
        return;
    }
    let short = run_hier(true, 20);
    let long = run_hier(true, 120);
    assert!(long.global_rounds > short.global_rounds);
    assert_eq!(
        short.datapath_allocs, long.datapath_allocs,
        "the hierarchical data path must also go allocation-free once warm"
    );
}

/// The real-thread controller's fused reduce region (cache drain, codec
/// transform, partial collective, apply) must also go allocation-free once
/// its pool is warm. Real threads make *which* rounds allocate timing-
/// dependent (warm-up spreads over the first few rounds as caches fill),
/// so instead of short-vs-long equality this pins an absolute ceiling far
/// below one allocation per round: 120 rounds with a leaky region would
/// record ≥ 120.
#[test]
fn threaded_steady_state_rounds_are_allocation_free() {
    use rna_runtime::{run_threaded, SyncMode, ThreadedConfig};
    if !cfg!(debug_assertions) {
        // The alloc hook is compiled out in release builds.
        return;
    }
    let n = 4;
    let mut config = ThreadedConfig::quick(n, SyncMode::Rna);
    config.rounds = 120;
    // Keep compute fast so the run stays well under a second.
    config.compute_us = vec![(100, 200); n];
    let r = run_threaded(&config);
    assert_eq!(r.rounds, 120);
    // Warm-up: n cache-drain buffers plus the reduce accumulator, with a
    // little slack for rounds where a contribution arrives late and the
    // pool briefly runs one buffer deeper.
    let ceiling = (2 * n + 4) as u64;
    assert!(
        r.datapath_allocs <= ceiling,
        "threaded reduce region allocates in steady state: {} allocs over {} rounds (ceiling {})",
        r.datapath_allocs,
        r.rounds,
        ceiling
    );
    assert!(
        r.datapath_allocs > 0,
        "warm-up must be visible to the debug alloc hook"
    );
}
