//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--quick]
//!
//! experiments: fig1 fig2 fig6 table3 table4 fig7 fig8 fig9 fig10 table5 all
//! --quick      run with ~8x smaller budgets (same shapes, faster)
//! ```

use rna_experiments::runners;
use rna_experiments::ExperimentScale;

fn usage() -> ! {
    eprintln!(
        "usage: repro <fig1|fig2|fig6|table3|table4|fig7|fig8|fig9|fig10|table5|extended|all> [--quick]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick {
        ExperimentScale::Quick
    } else {
        ExperimentScale::Paper
    };
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str);
    let Some(which) = which else { usage() };

    let run_fig6_family = |wants: &[&str]| {
        let r = runners::fig6::run(scale);
        let mut out = String::new();
        if wants.contains(&"fig6") {
            out.push_str(&r.render_fig6());
            out.push('\n');
        }
        if wants.contains(&"table3") {
            out.push_str(&r.render_table3());
            out.push('\n');
        }
        if wants.contains(&"table4") {
            out.push_str(&r.render_table4());
            out.push('\n');
        }
        out
    };

    let output = match which {
        "fig1" => runners::fig1::run(scale).render(),
        "fig2" => runners::fig2::run(scale).render(),
        "fig6" => run_fig6_family(&["fig6"]),
        "table3" => run_fig6_family(&["table3"]),
        "table4" => run_fig6_family(&["table4"]),
        "fig7" => runners::fig7::run(scale).render(),
        "fig8" => runners::fig8::run(scale).render(),
        "fig9" => runners::fig9::run(scale).render(),
        "fig10" => runners::fig10::run(scale).render(),
        "table5" => runners::table5::run(scale).render(),
        "extended" => runners::extended::run(scale).render(),
        "all" => {
            let mut out = String::new();
            out.push_str(&runners::fig1::run(scale).render());
            out.push('\n');
            out.push_str(&runners::fig2::run(scale).render());
            out.push('\n');
            out.push_str(&run_fig6_family(&["fig6", "table3", "table4"]));
            out.push_str(&runners::fig7::run(scale).render());
            out.push('\n');
            out.push_str(&runners::fig8::run(scale).render());
            out.push('\n');
            out.push_str(&runners::fig9::run(scale).render());
            out.push('\n');
            out.push_str(&runners::fig10::run(scale).render());
            out.push('\n');
            out.push_str(&runners::table5::run(scale).render());
            out.push('\n');
            out.push_str(&runners::extended::run(scale).render());
            out
        }
        _ => usage(),
    };
    println!("{output}");
}
