//! # rna-experiments
//!
//! The reproduction harness: one runner per table and figure of the paper's
//! evaluation (§7–8), plus the [`table`] text renderer and the shared
//! [`common`] configuration layer that maps the paper's four workloads onto
//! the simulator.
//!
//! Every runner is exposed both as a library function (used by the
//! integration tests and the Criterion benches in `rna-bench`) and through
//! the `repro` binary:
//!
//! ```text
//! repro fig1    # training-time breakdown under injected slowdowns
//! repro fig2    # inherent load imbalance (UCF101 lengths / LSTM batches)
//! repro fig6    # training speedup vs Horovod / eager-SGD / AD-PSGD
//! repro table3  # final training accuracy
//! repro fig7    # LSTM convergence curves
//! repro table4  # validation accuracy and iteration counts
//! repro fig8    # Transformer per-iteration and overall speedup
//! repro fig9    # throughput scalability, 4 → 32 workers
//! repro fig10   # probe-count sensitivity (power of two choices)
//! repro table5  # GPU↔CPU transmission overhead
//! repro all     # everything above, in order
//! ```
//!
//! The experiments use reduced worker counts and synthetic tasks (see
//! DESIGN.md's substitution ledger); EXPERIMENTS.md records paper-reported
//! vs measured values for every row.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod common;
pub mod runners;
pub mod table;

pub use common::{run_approach, Approach, ExperimentScale};
