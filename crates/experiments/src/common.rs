//! Shared configuration for all experiments: the approach registry and the
//! mapping from the paper's four workloads onto [`TrainSpec`]s.

use rna_baselines::{
    AdPsgdProtocol, AsyncPsProtocol, BackupWorkersProtocol, EagerSgdProtocol, HorovodProtocol,
    SgpProtocol,
};
use rna_core::hier::HierRnaProtocol;
use rna_core::rna::RnaProtocol;
use rna_core::sim::{Engine, TaskKind, TrainSpec};
use rna_core::{RnaConfig, RunResult};
use rna_simnet::{LinkModel, SimDuration};
use rna_training::LrSchedule;
use rna_workload::{HeterogeneityModel, ModelProfile};

/// The synchronization approaches compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// Horovod (BSP ring AllReduce) — the paper's baseline.
    Horovod,
    /// eager-SGD with majority partial collectives.
    EagerSgd,
    /// AD-PSGD gossip averaging.
    AdPsgd,
    /// RNA (this paper).
    Rna,
    /// RNA with hierarchical synchronization (explicit two-group split,
    /// as in §8.1's mixed-heterogeneity configuration).
    RnaHier,
    /// Stochastic gradient push (related work, §9).
    Sgp,
    /// Synchronous SGD with one backup worker (related work, §9).
    BackupWorkers,
    /// Asynchronous centralized parameter server (§2.2's hotspot).
    AsyncPs,
}

impl Approach {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Approach::Horovod => "Horovod",
            Approach::EagerSgd => "eager-SGD",
            Approach::AdPsgd => "AD-PSGD",
            Approach::Rna => "RNA",
            Approach::RnaHier => "RNA(H)",
            Approach::Sgp => "SGP",
            Approach::BackupWorkers => "Backup(b=1)",
            Approach::AsyncPs => "Async-PS",
        }
    }

    /// Every implemented approach (the extended comparison set).
    pub fn extended_set() -> [Approach; 7] {
        [
            Approach::Horovod,
            Approach::BackupWorkers,
            Approach::EagerSgd,
            Approach::AdPsgd,
            Approach::Sgp,
            Approach::AsyncPs,
            Approach::Rna,
        ]
    }

    /// The four approaches of the paper's headline comparison (Figure 6).
    pub fn paper_set() -> [Approach; 4] {
        [
            Approach::Horovod,
            Approach::EagerSgd,
            Approach::AdPsgd,
            Approach::Rna,
        ]
    }
}

/// How large to run the experiments.
///
/// `Paper` uses the full round budgets the reproduction was tuned on;
/// `Quick` shrinks budgets ~8× so the Criterion benches and CI runs finish
/// fast while preserving every comparison's shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Full budgets (the `repro` binary default).
    Paper,
    /// Reduced budgets for benches and tests.
    Quick,
}

impl ExperimentScale {
    /// Multiplier applied to virtual-time budgets.
    pub fn time_factor(&self) -> f64 {
        match self {
            ExperimentScale::Paper => 1.0,
            ExperimentScale::Quick => 0.125,
        }
    }

    fn budget(&self, base: SimDuration) -> SimDuration {
        base * self.time_factor()
    }
}

/// Runs one approach over a spec. RNA variants take `config`; the
/// hierarchical variant splits the cluster into an explicit fast/slow half
/// (the paper's mixed-heterogeneity grouping).
pub fn run_approach(approach: Approach, spec: &TrainSpec, config: &RnaConfig) -> RunResult {
    let n = spec.num_workers;
    match approach {
        Approach::Horovod => Engine::new(spec.clone(), HorovodProtocol::new(n)).run(),
        Approach::EagerSgd => Engine::new(spec.clone(), EagerSgdProtocol::new(n)).run(),
        Approach::AdPsgd => Engine::new(spec.clone(), AdPsgdProtocol::new(n)).run(),
        Approach::Rna => {
            Engine::new(spec.clone(), RnaProtocol::new(n, config.clone(), spec.seed)).run()
        }
        Approach::RnaHier => {
            let half = (n / 2).max(1);
            let groups = vec![(0..half).collect(), (half..n).collect()];
            // Amortize the inter-group PS exchange over a few rounds —
            // the frequency knob §6 leaves open.
            let protocol = HierRnaProtocol::new(groups, config.clone()).with_ps_every(4);
            Engine::new(spec.clone(), protocol).run()
        }
        Approach::Sgp => Engine::new(spec.clone(), SgpProtocol::new(n)).run(),
        Approach::BackupWorkers => {
            Engine::new(spec.clone(), BackupWorkersProtocol::new(n, 1.min(n - 1))).run()
        }
        Approach::AsyncPs => Engine::new(spec.clone(), AsyncPsProtocol::new(n)).run(),
    }
}

/// The workloads of §7.2, keyed by the paper's names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// ResNet50 on ImageNet (balanced CNN).
    ResNet50,
    /// VGG16 on CIFAR-10 (communication-dominated CNN).
    Vgg16,
    /// 4096-wide LSTM on UCF101 features (long-tail recurrent).
    Lstm,
    /// Transformer on WMT17 (token-imbalanced attention).
    Transformer,
}

impl Workload {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::ResNet50 => "ResNet50",
            Workload::Vgg16 => "VGG16",
            Workload::Lstm => "LSTM",
            Workload::Transformer => "Transformer",
        }
    }

    /// The Figure 6 set.
    pub fn figure6_set() -> [Workload; 3] {
        [Workload::ResNet50, Workload::Vgg16, Workload::Lstm]
    }

    /// The communication/compute profile for this workload.
    pub fn profile(&self) -> ModelProfile {
        match self {
            Workload::ResNet50 => ModelProfile::resnet50(),
            Workload::Vgg16 => ModelProfile::vgg16(),
            Workload::Lstm => ModelProfile::lstm_ucf101(),
            Workload::Transformer => ModelProfile::transformer_wmt17(),
        }
    }

    /// The synthetic learnable task standing in for this workload (see the
    /// substitution ledger in DESIGN.md).
    pub fn task(&self) -> TaskKind {
        match self {
            Workload::ResNet50 => TaskKind::Classification {
                dim: 16,
                classes: 8,
                hidden: Some(16),
                samples: 512,
                spread: 0.6,
            },
            Workload::Vgg16 => TaskKind::Classification {
                dim: 12,
                classes: 6,
                hidden: Some(20),
                samples: 512,
                spread: 0.5,
            },
            Workload::Lstm => TaskKind::Sequence {
                input_dim: 4,
                classes: 4,
                hidden: 10,
                samples: 360,
                noise: 0.5,
                min_len: 3,
                max_len: 12,
            },
            Workload::Transformer => TaskKind::Sequence {
                input_dim: 4,
                classes: 4,
                hidden: 8,
                samples: 360,
                noise: 0.5,
                min_len: 2,
                max_len: 10,
            },
        }
    }

    /// Virtual-time budget (before scaling). Runs are bounded by time, not
    /// rounds: non-blocking approaches execute many more (cheaper) rounds
    /// than BSP in the same budget, which is exactly the comparison the
    /// paper makes.
    fn base_time(&self) -> SimDuration {
        match self {
            Workload::ResNet50 | Workload::Vgg16 => SimDuration::from_secs(400),
            Workload::Lstm | Workload::Transformer => SimDuration::from_secs(800),
        }
    }

    /// Builds the full [`TrainSpec`] for this workload under the given
    /// heterogeneity.
    pub fn spec(
        &self,
        n: usize,
        hetero: HeterogeneityModel,
        seed: u64,
        scale: ExperimentScale,
    ) -> TrainSpec {
        assert_eq!(hetero.num_workers(), n, "heterogeneity size mismatch");
        TrainSpec {
            num_workers: n,
            profile: self.profile(),
            hetero,
            link: LinkModel::infiniband_edr(),
            task: self.task(),
            seed,
            batch_size: 16,
            lr: LrSchedule::Constant(0.05),
            momentum: 0.0,
            weight_decay: 0.0,
            eval_every: 10,
            eval_every_iters: Some(8 * n as u64),
            max_time: scale.budget(self.base_time()),
            max_rounds: 200_000,
            target_loss: None,
            patience: None,
            charge_transfer_overhead: false,
            crashes: Vec::new(),
            fault_plan: rna_core::fault::FaultPlan::none(),
            net_fault_plan: rna_core::fault::NetFaultPlan::none(),
            churn_plan: rna_core::membership::ChurnPlan::none(),
        }
    }
}

/// The paper's §8.1 dynamic heterogeneity: 0–50 ms random delay per worker
/// per iteration.
pub fn dynamic_hetero(n: usize) -> HeterogeneityModel {
    HeterogeneityModel::dynamic_uniform(n, 0, 50)
}

/// The paper's §8.1 mixed heterogeneity ("M"): group B gets an extra
/// 50–100 ms on top of the dynamic delay.
pub fn mixed_hetero(n: usize) -> HeterogeneityModel {
    HeterogeneityModel::mixed_groups(n, 0, 50, 50, 100)
}

/// Computes `baseline / value` guarding against zero (reported as 0.0).
pub fn speedup(baseline: f64, value: f64) -> f64 {
    if value <= 0.0 {
        0.0
    } else {
        baseline / value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approaches_have_names() {
        for a in [
            Approach::Horovod,
            Approach::EagerSgd,
            Approach::AdPsgd,
            Approach::Rna,
            Approach::RnaHier,
            Approach::Sgp,
            Approach::BackupWorkers,
            Approach::AsyncPs,
        ] {
            assert!(!a.name().is_empty());
        }
        assert_eq!(Approach::paper_set().len(), 4);
        assert_eq!(Approach::extended_set().len(), 7);
    }

    #[test]
    fn every_workload_builds_a_valid_spec() {
        for w in [
            Workload::ResNet50,
            Workload::Vgg16,
            Workload::Lstm,
            Workload::Transformer,
        ] {
            let spec = w.spec(4, dynamic_hetero(4), 1, ExperimentScale::Quick);
            assert_eq!(spec.num_workers, 4);
            assert!(spec.max_time >= SimDuration::from_secs(10));
            assert!(!w.name().is_empty());
        }
    }

    #[test]
    fn quick_scale_shrinks_budget() {
        let paper = Workload::ResNet50.spec(4, dynamic_hetero(4), 1, ExperimentScale::Paper);
        let quick = Workload::ResNet50.spec(4, dynamic_hetero(4), 1, ExperimentScale::Quick);
        assert!(quick.max_time < paper.max_time);
    }

    #[test]
    fn run_approach_covers_every_variant() {
        // Tiny smoke runs across the full registry.
        let config = RnaConfig::default();
        for a in [
            Approach::Horovod,
            Approach::EagerSgd,
            Approach::AdPsgd,
            Approach::Rna,
            Approach::RnaHier,
            Approach::Sgp,
            Approach::BackupWorkers,
            Approach::AsyncPs,
        ] {
            let spec = TrainSpec::smoke_test(4, 3).with_max_rounds(25);
            let r = run_approach(a, &spec, &config);
            assert!(r.global_rounds > 0, "{} made no rounds", a.name());
        }
    }

    #[test]
    fn speedup_guards_zero() {
        assert_eq!(speedup(10.0, 0.0), 0.0);
        assert_eq!(speedup(10.0, 5.0), 2.0);
    }
}
