//! Plain-text rendering of result tables and series.
//!
//! The `repro` binary prints the same rows the paper reports; these helpers
//! keep the output aligned and diff-friendly so EXPERIMENTS.md can quote it
//! verbatim.

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use rna_experiments::table::Table;
///
/// let mut t = Table::new(vec!["approach".into(), "speedup".into()]);
/// t.row(vec!["RNA".into(), "1.7x".into()]);
/// let s = t.render();
/// assert!(s.contains("RNA"));
/// assert!(s.contains("speedup"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(title);
            out.push('\n');
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i] - cell.len()));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given precision.
pub fn fmt_f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Formats a speedup as `1.73x`.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage `92.4%`.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Renders a horizontal ASCII bar chart (one row per label) scaled to
/// `width` characters at the maximum value.
///
/// # Examples
///
/// ```
/// let s = rna_experiments::table::bar_chart(
///     &[("a".to_string(), 2.0), ("b".to_string(), 4.0)], 8);
/// assert!(s.contains("########"));
/// ```
pub fn bar_chart(entries: &[(String, f64)], width: usize) -> String {
    let max = entries
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0_f64, f64::max)
        .max(1e-12);
    let label_w = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in entries {
        let bars = ((v / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label}{}  {} {v:.3}\n",
            " ".repeat(label_w - label.len()),
            "#".repeat(bars)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["model".into(), "acc".into()]).with_title("Table X");
        t.row(vec!["ResNet50".into(), "76.2%".into()]);
        t.row(vec!["VGG".into(), "92.5%".into()]);
        let s = t.render();
        assert!(s.starts_with("Table X\n"));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows
        assert_eq!(lines.len(), 5);
        // Columns align: "acc" starts at the same offset in each line.
        let pos = lines[1].find("acc").unwrap();
        assert_eq!(&lines[3][pos..pos + 1], "7"); // 76.2%
        assert_eq!(&lines[4][pos..pos + 1], "9"); // 92.5%
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        Table::new(vec!["a".into()]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_speedup(1.7), "1.70x");
        assert_eq!(fmt_pct(0.924), "92.4%");
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let s = bar_chart(&[("x".into(), 1.0), ("y".into(), 2.0)], 10);
        assert!(s.lines().nth(1).unwrap().contains("##########"));
        assert!(s.lines().next().unwrap().contains("#####"));
    }

    #[test]
    fn bar_chart_empty_and_zero() {
        assert_eq!(bar_chart(&[], 10), "");
        let s = bar_chart(&[("z".into(), 0.0)], 10);
        assert!(s.contains("z"));
    }
}
