//! Figure 1: training-time breakdown with different system configurations.
//!
//! The motivation experiment (§2.3.1): three workers on BSP ring AllReduce,
//! with 0 / 10 / 40 ms injected delays, training ResNet-56 and VGG-16 on
//! CIFAR-10. The figure splits each worker's time into *computation* and
//! *waiting* (communication + barrier-blocked); the fast worker computes
//! ~2× faster yet spends most of its time waiting for the stragglers.

use rna_baselines::HorovodProtocol;
use rna_core::sim::{Engine, TaskKind, TrainSpec};
use rna_simnet::{LinkModel, SimDuration};
use rna_training::LrSchedule;
use rna_workload::{HeterogeneityModel, ModelProfile};

use crate::common::ExperimentScale;
use crate::table::{fmt_f, fmt_pct, Table};

/// One worker's breakdown row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Row {
    /// Network name.
    pub model: String,
    /// Worker index (w1 = no delay, w2 = +10 ms, w3 = +40 ms).
    pub worker: usize,
    /// Mean computation time per iteration (ms).
    pub compute_ms: f64,
    /// Mean waiting time per iteration (ms).
    pub waiting_ms: f64,
    /// Fraction of the iteration spent computing.
    pub compute_fraction: f64,
}

/// The Figure 1 result set.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// All rows, grouped by model then worker.
    pub rows: Vec<Fig1Row>,
}

fn motivation_spec(profile: ModelProfile, scale: ExperimentScale, seed: u64) -> TrainSpec {
    TrainSpec {
        num_workers: 3,
        profile,
        hetero: HeterogeneityModel::deterministic(&[0, 10, 40]),
        // The motivation cluster is 10 Gb Ethernet, not InfiniBand.
        link: LinkModel::ethernet_10g(),
        task: TaskKind::Classification {
            dim: 8,
            classes: 4,
            hidden: None,
            samples: 256,
            spread: 0.5,
        },
        seed,
        batch_size: 16,
        lr: LrSchedule::Constant(0.1),
        momentum: 0.0,
        weight_decay: 0.0,
        eval_every: 50,
        eval_every_iters: None,
        max_time: SimDuration::from_secs(3600),
        max_rounds: (200.0 * scale.time_factor().max(0.25)) as u64,
        target_loss: None,
        patience: None,
        charge_transfer_overhead: false,
        crashes: Vec::new(),
        fault_plan: rna_core::fault::FaultPlan::none(),
        net_fault_plan: rna_core::fault::NetFaultPlan::none(),
        churn_plan: rna_core::membership::ChurnPlan::none(),
    }
}

/// Runs the breakdown experiment.
pub fn run(scale: ExperimentScale) -> Fig1Result {
    let mut rows = Vec::new();
    for profile in [ModelProfile::resnet56(), ModelProfile::vgg16()] {
        let name = profile.name.clone();
        let spec = motivation_spec(profile, scale, 42);
        let result = Engine::new(spec, HorovodProtocol::new(3)).run();
        let iters = result.global_rounds.max(1) as f64;
        for (w, b) in result.breakdown.iter().enumerate() {
            rows.push(Fig1Row {
                model: name.clone(),
                worker: w + 1,
                compute_ms: b.compute.as_millis_f64() / iters,
                waiting_ms: b.waiting().as_millis_f64() / iters,
                compute_fraction: b.compute_fraction(),
            });
        }
    }
    Fig1Result { rows }
}

impl Fig1Result {
    /// Renders the figure as a table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "model".into(),
            "worker".into(),
            "compute ms/iter".into(),
            "waiting ms/iter".into(),
            "compute %".into(),
        ])
        .with_title("Figure 1: per-worker time breakdown (BSP, delays 0/10/40 ms)");
        for r in &self.rows {
            t.row(vec![
                r.model.clone(),
                format!("w{}", r.worker),
                fmt_f(r.compute_ms, 1),
                fmt_f(r.waiting_ms, 1),
                fmt_pct(r.compute_fraction),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_worker_waits_most() {
        let r = run(ExperimentScale::Quick);
        assert_eq!(r.rows.len(), 6);
        for model in ["ResNet56", "VGG16"] {
            let rows: Vec<&Fig1Row> = r.rows.iter().filter(|row| row.model == model).collect();
            // w1 (no delay) waits more than w3 (the 40 ms straggler).
            assert!(
                rows[0].waiting_ms > rows[2].waiting_ms,
                "{model}: w1 {} vs w3 {}",
                rows[0].waiting_ms,
                rows[2].waiting_ms
            );
            // The straggler's wait ≈ just the collective; its compute
            // fraction is the highest.
            assert!(rows[2].compute_fraction > rows[0].compute_fraction);
            // Waiting gap ≈ the 40 ms delay difference.
            let gap = rows[0].waiting_ms - rows[2].waiting_ms;
            assert!((gap - 40.0).abs() < 8.0, "gap {gap}");
        }
        let text = r.render();
        assert!(text.contains("Figure 1"));
        assert!(text.contains("VGG16"));
    }
}
