//! Table 5: the extra GPU↔CPU transmission cost of RNA (§8.5).
//!
//! RNA stages gradients in CPU memory around the MPI collective, paying two
//! PCIe crossings of the gradient per iteration. The overhead percentage is
//! that cost over the iteration time; larger models (VGG16, Transformer)
//! pay more — the paper reports 23% / 18% / 6.2% / 3.8% for VGG16 /
//! Transformer / ResNet50 / LSTM.

use rna_core::rna::RnaProtocol;
use rna_core::sim::Engine;
use rna_core::RnaConfig;
use rna_workload::transfer::TransferModel;

use crate::common::{dynamic_hetero, ExperimentScale, Workload};
use crate::table::{fmt_f, Table};

/// One Table 5 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// Workload name.
    pub model: String,
    /// Measured mean iteration (round) time without the transfer, ms.
    pub iteration_ms: f64,
    /// Extra transmission cost as a percentage of the iteration.
    pub extra_cost_percent: f64,
}

/// The Table 5 result set.
#[derive(Debug, Clone)]
pub struct Table5Result {
    /// One row per workload.
    pub rows: Vec<Table5Row>,
}

/// Measures the transmission overhead for every workload by running RNA
/// briefly and pricing the PCIe staging against the observed round time.
pub fn run(scale: ExperimentScale) -> Table5Result {
    let transfer = TransferModel::default();
    let config = RnaConfig::default();
    let n = 8;
    let rows = [
        Workload::ResNet50,
        Workload::Lstm,
        Workload::Vgg16,
        Workload::Transformer,
    ]
    .into_iter()
    .map(|w| {
        let mut spec = w.spec(n, dynamic_hetero(n), 55, scale);
        // A short calibration run is enough to measure the round time.
        spec.max_time = spec.max_time * 0.2;
        let result = Engine::new(spec, RnaProtocol::new(n, config.clone(), 0)).run();
        // The paper's denominator is one *worker iteration* (compute +
        // synchronization share), not one global round: average wall time
        // per per-worker iteration.
        let iters_per_worker = (result.total_iterations() as f64 / n as f64).max(1.0);
        let iteration = rna_simnet::SimDuration::from_secs_f64(
            result.wall_time.as_secs_f64() / iters_per_worker,
        )
        .max(rna_simnet::SimDuration::from_micros(1));
        Table5Row {
            model: w.name().to_string(),
            iteration_ms: iteration.as_millis_f64(),
            extra_cost_percent: transfer.overhead_percent(w.profile().grad_bytes(), iteration),
        }
    })
    .collect();
    Table5Result { rows }
}

impl Table5Result {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "DL application".into(),
            "iteration ms".into(),
            "extra cost".into(),
        ])
        .with_title("Table 5: RNA GPU<->CPU transmission cost");
        for r in &self.rows {
            t.row(vec![
                r.model.clone(),
                fmt_f(r.iteration_ms, 1),
                format!("{:.1}%", r.extra_cost_percent),
            ]);
        }
        t.render()
    }

    /// The overhead of a named workload.
    pub fn overhead_of(&self, model: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.model == model)
            .map(|r| r.extra_cost_percent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        // Paper ordering: VGG16 (23%) > Transformer (18%) > ResNet50
        // (6.2%) > LSTM (3.8%).
        let r = run(ExperimentScale::Quick);
        let vgg = r.overhead_of("VGG16").unwrap();
        let tfm = r.overhead_of("Transformer").unwrap();
        let res = r.overhead_of("ResNet50").unwrap();
        let lstm = r.overhead_of("LSTM").unwrap();
        assert!(vgg > tfm, "VGG {vgg} vs Transformer {tfm}");
        assert!(tfm > res, "Transformer {tfm} vs ResNet {res}");
        assert!(res > lstm, "ResNet {res} vs LSTM {lstm}");
        // All are genuine percentages.
        for row in &r.rows {
            assert!((0.0..100.0).contains(&row.extra_cost_percent));
        }
        assert!(r.render().contains("Table 5"));
    }
}
