//! Figure 2: inherent load imbalance from training an LSTM on UCF101.
//!
//! (a) The distribution of video frame counts (paper: range 29–1776, mean
//! 186, σ 97.7 over 13,320 videos). (b) The per-batch training-time
//! distribution for a 2048-wide LSTM over 2,000 sampled batches (paper:
//! range 156–8000 ms, mean 1219 ms, σ 760 ms).

use rna_simnet::{SimDuration, SimRng};
use rna_tensor::stats::{Histogram, Summary};
use rna_workload::video::{BatchTimeModel, VideoLengthModel};

use crate::common::ExperimentScale;
use crate::table::{fmt_f, Table};

/// The Figure 2 result set.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Summary of the video-length distribution (Figure 2a).
    pub lengths: Summary,
    /// Histogram of video lengths.
    pub length_hist: Vec<(f64, u64)>,
    /// Summary of per-batch training times in ms (Figure 2b).
    pub batch_times: Summary,
    /// Histogram of batch times.
    pub batch_hist: Vec<(f64, u64)>,
}

/// Runs the imbalance characterization.
pub fn run(scale: ExperimentScale) -> Fig2Result {
    let mut rng = SimRng::seed(101);
    let corpus_size = (13_320.0 * scale.time_factor().max(0.25)) as usize;
    let batches = (2_000.0 * scale.time_factor().max(0.25)) as usize;

    // (a) UCF101-like corpus.
    let corpus = VideoLengthModel::ucf101().corpus(corpus_size, &mut rng);
    let lengths = corpus.summary();
    let mut length_hist = Histogram::new(0.0, 800.0, 16);
    for &l in corpus.lengths() {
        length_hist.record(l as f64);
    }

    // (b) Batch times for a recurrent model with bucketed batching (videos
    // of similar length batched together), calibrated to the paper's
    // 1219 ms mean; bucketing preserves the per-video coefficient of
    // variation, which is what Figure 2b's σ = 760 ms implies.
    let model = BatchTimeModel::calibrate_bucketed(&corpus, SimDuration::from_millis(1219));
    let times: Vec<f64> = (0..batches)
        .map(|_| {
            model
                .batch_time(corpus.sample_bucketed_units(&mut rng))
                .as_millis_f64()
                .min(8_000.0) // the paper's observed ceiling
        })
        .collect();
    let batch_times = Summary::of(&times);
    let mut batch_hist = Histogram::new(0.0, 8_000.0, 16);
    for &t in &times {
        batch_hist.record(t);
    }

    Fig2Result {
        lengths,
        length_hist: length_hist.buckets(),
        batch_times,
        batch_hist: batch_hist.buckets(),
    }
}

impl Fig2Result {
    /// Renders both panels as tables.
    pub fn render(&self) -> String {
        let summary_table = |title: &str, s: &Summary, unit: &str| {
            let mut t = Table::new(vec!["stat".into(), format!("value ({unit})")])
                .with_title(title.to_string());
            for (name, v) in [
                ("count", s.count as f64),
                ("mean", s.mean),
                ("stddev", s.stddev),
                ("min", s.min),
                ("p50", s.p50),
                ("p95", s.p95),
                ("max", s.max),
            ] {
                t.row(vec![name.into(), fmt_f(v, 1)]);
            }
            t.render()
        };
        let mut out = summary_table(
            "Figure 2a: UCF101-like video frame counts",
            &self.lengths,
            "frames",
        );
        out.push('\n');
        out.push_str(&summary_table(
            "Figure 2b: LSTM per-batch training time",
            &self.batch_times,
            "ms",
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributions_match_paper_statistics() {
        let r = run(ExperimentScale::Paper);
        // Figure 2a targets.
        assert!(
            (r.lengths.mean - 186.0).abs() < 10.0,
            "mean {}",
            r.lengths.mean
        );
        assert!((r.lengths.stddev - 97.7).abs() < 15.0);
        assert!(r.lengths.min >= 29.0 && r.lengths.max <= 1776.0);
        // Figure 2b targets: long-tail batch times around 1219 ms with a
        // spread comparable to the paper's σ = 760 ms.
        assert!(
            (r.batch_times.mean - 1219.0).abs() < 150.0,
            "batch mean {}",
            r.batch_times.mean
        );
        assert!(
            r.batch_times.stddev > 450.0,
            "batch std {} too narrow for Figure 2b",
            r.batch_times.stddev
        );
        assert!(r.batch_times.max <= 8_000.0 * 1.01);
        // Long tail: p95 well above median.
        assert!(r.batch_times.p95 > 1.2 * r.batch_times.p50);
        // Histograms conserve mass.
        let total: u64 = r.length_hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total as usize, r.lengths.count);
        assert!(r.render().contains("Figure 2a"));
    }

    #[test]
    fn quick_scale_shrinks_samples() {
        let r = run(ExperimentScale::Quick);
        assert!(r.lengths.count < 13_320);
        assert!(r.lengths.count > 1_000);
    }
}
