//! Figure 7: convergence curves for LSTM.
//!
//! Loss and training accuracy over virtual time for Horovod, eager-SGD,
//! AD-PSGD, and RNA on the long-tail LSTM workload. The paper's shape:
//! AD-PSGD moves fast but converges to a visibly worse loss/accuracy; RNA
//! tracks Horovod's quality while finishing much earlier.

use rna_core::RnaConfig;
use rna_training::History;

use crate::common::{dynamic_hetero, run_approach, Approach, ExperimentScale, Workload};
use crate::table::{fmt_f, fmt_pct, Table};

/// One approach's convergence curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// The approach.
    pub approach: Approach,
    /// The full evaluation history.
    pub history: History,
}

/// The Figure 7 result set.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// One curve per approach.
    pub curves: Vec<Curve>,
}

/// Runs the convergence-curve experiment.
pub fn run(scale: ExperimentScale) -> Fig7Result {
    let n = 8;
    let config = RnaConfig::default();
    let spec = Workload::Lstm.spec(n, dynamic_hetero(n), 77, scale);
    let curves = Approach::paper_set()
        .into_iter()
        .map(|a| Curve {
            approach: a,
            history: run_approach(a, &spec, &config).history,
        })
        .collect();
    Fig7Result { curves }
}

impl Fig7Result {
    /// The curve of one approach.
    pub fn curve(&self, approach: Approach) -> Option<&Curve> {
        self.curves.iter().find(|c| c.approach == approach)
    }

    /// Renders each curve down-sampled to at most `points` rows.
    pub fn render(&self) -> String {
        let points = 9;
        let mut out = String::from("Figure 7: LSTM convergence (loss / accuracy vs time)\n");
        for c in &self.curves {
            let mut t = Table::new(vec!["time s".into(), "loss".into(), "accuracy".into()])
                .with_title(format!("-- {}", c.approach.name()));
            let pts = c.history.points();
            if pts.is_empty() {
                continue;
            }
            let stride = (pts.len() / points).max(1);
            for p in pts.iter().step_by(stride) {
                t.row(vec![
                    fmt_f(p.time_s, 1),
                    fmt_f(p.loss, 4),
                    fmt_pct(p.accuracy),
                ]);
            }
            let last = pts.last().unwrap();
            t.row(vec![
                fmt_f(last.time_s, 1),
                fmt_f(last.loss, 4),
                fmt_pct(last.accuracy),
            ]);
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_shapes() {
        let r = run(ExperimentScale::Quick);
        assert_eq!(r.curves.len(), 4);
        for c in &r.curves {
            let pts = c.history.points();
            assert!(pts.len() >= 2, "{} curve too short", c.approach.name());
            assert!(
                pts.last().unwrap().loss < pts[0].loss,
                "{} did not descend",
                c.approach.name()
            );
        }
        // RNA ends at a loss comparable to (or better than) AD-PSGD's.
        let rna = r.curve(Approach::Rna).unwrap().history.best_loss().unwrap();
        let adpsgd = r
            .curve(Approach::AdPsgd)
            .unwrap()
            .history
            .best_loss()
            .unwrap();
        assert!(
            rna <= adpsgd * 1.15,
            "RNA best {rna} vs AD-PSGD best {adpsgd}"
        );
        assert!(r.render().contains("Figure 7"));
    }
}
