//! Figure 9: Transformer throughput vs number of processes.
//!
//! Fixed-duration training of the Transformer stand-in at 4, 8, 16, and 32
//! workers under dynamic heterogeneity; throughput is tokens processed per
//! virtual second (iterations × 4096-token batches). The paper's shape:
//! all approaches gain with scale, the asynchronous ones (AD-PSGD, RNA)
//! scale best, Horovod lags because the barrier amplifies with `n`
//! (E[max of n delays] grows), and eager-SGD sits in between.

use rna_core::{RnaConfig, RunResult};

use crate::common::{dynamic_hetero, run_approach, Approach, ExperimentScale, Workload};
use crate::table::{fmt_f, Table};

/// Throughput of one approach at one scale.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Number of workers.
    pub workers: usize,
    /// The approach.
    pub approach: Approach,
    /// Tokens per virtual second.
    pub tokens_per_sec: f64,
}

/// The Figure 9 result set.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// All rows, grouped by worker count.
    pub rows: Vec<Fig9Row>,
}

fn tokens_per_sec(r: &RunResult, batch_tokens: u64) -> f64 {
    let secs = r.wall_time.as_secs_f64();
    if secs == 0.0 {
        0.0
    } else {
        (r.total_iterations() * batch_tokens) as f64 / secs
    }
}

/// Runs the scalability sweep.
pub fn run(scale: ExperimentScale) -> Fig9Result {
    run_with_workers(&[4, 8, 16, 32], scale)
}

/// Runs the sweep over chosen worker counts (the benches use a subset).
pub fn run_with_workers(worker_counts: &[usize], scale: ExperimentScale) -> Fig9Result {
    let config = RnaConfig::default();
    let batch_tokens = Workload::Transformer.profile().batch_size as u64;
    let mut rows = Vec::new();
    for &n in worker_counts {
        let mut spec = Workload::Transformer.spec(n, dynamic_hetero(n), 99, scale);
        // A fixed-duration throughput probe: a quarter of the training
        // budget is plenty to measure steady-state rates.
        spec.max_time = spec.max_time * 0.25;
        for a in Approach::paper_set() {
            let r = run_approach(a, &spec, &config);
            rows.push(Fig9Row {
                workers: n,
                approach: a,
                tokens_per_sec: tokens_per_sec(&r, batch_tokens),
            });
        }
    }
    Fig9Result { rows }
}

impl Fig9Result {
    /// Looks up a row.
    pub fn row(&self, workers: usize, approach: Approach) -> Option<&Fig9Row> {
        self.rows
            .iter()
            .find(|r| r.workers == workers && r.approach == approach)
    }

    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["workers".into(), "approach".into(), "tokens/s".into()])
            .with_title("Figure 9: Transformer throughput vs process count");
        for r in &self.rows {
            t.row(vec![
                r.workers.to_string(),
                r.approach.name().to_string(),
                fmt_f(r.tokens_per_sec, 0),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rna_scales_better_than_horovod() {
        let r = run_with_workers(&[4, 16], ExperimentScale::Quick);
        assert_eq!(r.rows.len(), 8);
        let rna4 = r.row(4, Approach::Rna).unwrap().tokens_per_sec;
        let rna16 = r.row(16, Approach::Rna).unwrap().tokens_per_sec;
        let h4 = r.row(4, Approach::Horovod).unwrap().tokens_per_sec;
        let h16 = r.row(16, Approach::Horovod).unwrap().tokens_per_sec;
        // Everyone gains with workers.
        assert!(rna16 > rna4, "RNA {rna4} -> {rna16}");
        assert!(h16 > h4, "Horovod {h4} -> {h16}");
        // RNA's scaling factor beats Horovod's (the barrier tax grows
        // with n).
        assert!(
            rna16 / rna4 > h16 / h4,
            "RNA x{:.2} vs Horovod x{:.2}",
            rna16 / rna4,
            h16 / h4
        );
        // At every scale, RNA's absolute throughput leads Horovod's.
        assert!(rna16 > h16);
        assert!(r.render().contains("Figure 9"));
    }
}
