//! One runner per table/figure of the paper's evaluation.
//!
//! Each runner exposes `run(scale) -> Result` returning structured data
//! plus a `render()` that prints the same rows/series the paper reports.

pub mod extended;
pub mod fig1;
pub mod fig10;
pub mod fig2;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table5;
