//! Extension beyond the paper: all seven synchronization strategies
//! head-to-head.
//!
//! The paper compares four approaches; this workspace also implements the
//! §9 reference points (backup workers, async-PS, SGP). This runner trains
//! the ResNet50 stand-in under dynamic heterogeneity with *every*
//! implemented strategy and reports convergence time, quality, round
//! structure, and communication volume — the full design-space picture.

use rna_core::{RnaConfig, RunResult, StopReason};

use crate::common::{dynamic_hetero, run_approach, Approach, ExperimentScale, Workload};
use crate::table::{fmt_f, fmt_pct, fmt_speedup, Table};

/// One approach's row in the extended comparison.
#[derive(Debug, Clone)]
pub struct ExtendedRow {
    /// The approach.
    pub approach: Approach,
    /// Virtual seconds to the early-stop criterion (or budget).
    pub train_time_s: f64,
    /// Whether the stop criterion fired within budget.
    pub converged: bool,
    /// Speedup over Horovod.
    pub speedup: f64,
    /// Final evaluation accuracy.
    pub final_accuracy: f64,
    /// Gigabytes moved on the network.
    pub comm_gb: f64,
    /// Mean per-round participation.
    pub participation: f64,
}

/// The extended comparison result set.
#[derive(Debug, Clone)]
pub struct ExtendedResult {
    /// One row per approach, Horovod first.
    pub rows: Vec<ExtendedRow>,
}

/// Runs the extended comparison.
pub fn run(scale: ExperimentScale) -> ExtendedResult {
    let n = 8;
    let config = RnaConfig::default();
    let mut spec = Workload::ResNet50.spec(n, dynamic_hetero(n), 4321, scale);
    spec.patience = Some(10);
    let results: Vec<(Approach, RunResult)> = Approach::extended_set()
        .into_iter()
        .map(|a| (a, run_approach(a, &spec, &config)))
        .collect();
    let horovod_time = results[0].1.wall_time.as_secs_f64();
    let rows = results
        .into_iter()
        .map(|(a, r)| {
            let t = r.wall_time.as_secs_f64();
            ExtendedRow {
                approach: a,
                train_time_s: t,
                converged: r.stop_reason == StopReason::EarlyStopped,
                speedup: if t > 0.0 { horovod_time / t } else { 0.0 },
                final_accuracy: r.final_accuracy().unwrap_or(0.0),
                comm_gb: r.comm_bytes as f64 / 1e9,
                participation: r.mean_participation(),
            }
        })
        .collect();
    ExtendedResult { rows }
}

impl ExtendedResult {
    /// Looks up one approach's row.
    pub fn row(&self, approach: Approach) -> Option<&ExtendedRow> {
        self.rows.iter().find(|r| r.approach == approach)
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "approach".into(),
            "train time s".into(),
            "speedup".into(),
            "final acc".into(),
            "comm GB".into(),
            "participation".into(),
        ])
        .with_title("Extension: all seven strategies, ResNet50 stand-in, dynamic heterogeneity");
        for r in &self.rows {
            t.row(vec![
                r.approach.name().to_string(),
                format!(
                    "{}{}",
                    fmt_f(r.train_time_s, 1),
                    if r.converged { "" } else { "*" }
                ),
                fmt_speedup(r.speedup),
                fmt_pct(r.final_accuracy),
                fmt_f(r.comm_gb, 1),
                fmt_pct(r.participation),
            ]);
        }
        let mut out = t.render();
        out.push_str("(* = budget exhausted before the early-stop criterion)\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_run_and_rna_is_competitive() {
        let r = run(ExperimentScale::Quick);
        assert_eq!(r.rows.len(), 7);
        let rna = r.row(Approach::Rna).unwrap();
        let horovod = r.row(Approach::Horovod).unwrap();
        assert!(
            rna.train_time_s <= horovod.train_time_s * 1.05,
            "rna {} vs horovod {}",
            rna.train_time_s,
            horovod.train_time_s
        );
        // Every strategy produced a working model on this easy task.
        for row in &r.rows {
            assert!(
                row.final_accuracy > 0.5,
                "{} accuracy {}",
                row.approach.name(),
                row.final_accuracy
            );
        }
        assert!(r.render().contains("Extension"));
    }
}
