//! Figure 8: Transformer per-iteration and overall speedup.
//!
//! Fixed-time Transformer training (§8.3) in a homogeneous environment
//! (imbalance comes only from token-length variance) and a heterogeneous
//! one (added 0–50 ms dynamic slowdown). Two metrics, both normalized to
//! Horovod:
//!
//! * **per-iteration speedup** — mean time per worker-iteration,
//! * **overall speedup** — time until the early-stopping criterion fires
//!   (§8.1: Keras EarlyStopping, patience 10).

use rna_core::{RnaConfig, RunResult};
use rna_workload::HeterogeneityModel;

use crate::common::{dynamic_hetero, run_approach, Approach, ExperimentScale, Workload};
use crate::table::{fmt_f, fmt_speedup, Table};

/// One approach × environment row.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Environment name (`homogeneous` / `heterogeneous`).
    pub environment: &'static str,
    /// The approach.
    pub approach: Approach,
    /// Mean virtual time per worker-iteration (ms).
    pub per_iteration_ms: f64,
    /// Per-iteration speedup over Horovod.
    pub per_iteration_speedup: f64,
    /// Overall (time-to-target) speedup over Horovod.
    pub overall_speedup: f64,
}

/// The Figure 8 result set.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// All rows.
    pub rows: Vec<Fig8Row>,
}

fn per_iteration_ms(r: &RunResult) -> f64 {
    let iters = r.total_iterations().max(1) as f64;
    r.wall_time.as_millis_f64() / iters
}

/// Runs the Transformer throughput comparison.
pub fn run(scale: ExperimentScale) -> Fig8Result {
    let n = 8;
    let config = RnaConfig::default();
    let mut rows = Vec::new();
    for (environment, hetero) in [
        ("homogeneous", HeterogeneityModel::homogeneous(n)),
        ("heterogeneous", dynamic_hetero(n)),
    ] {
        let mut spec = Workload::Transformer.spec(n, hetero, 88, scale);
        // §8.1's stopping criterion: loss plateau with patience 10.
        spec.patience = Some(10);
        let results: Vec<(Approach, RunResult)> = Approach::paper_set()
            .into_iter()
            .map(|a| (a, run_approach(a, &spec, &config)))
            .collect();
        let horovod = &results[0].1;
        let h_iter = per_iteration_ms(horovod);
        let h_overall = horovod.wall_time.as_secs_f64();
        for (a, r) in &results {
            let iter_ms = per_iteration_ms(r);
            let t = r.wall_time.as_secs_f64();
            let overall = if t > 0.0 { h_overall / t } else { 0.0 };
            rows.push(Fig8Row {
                environment,
                approach: *a,
                per_iteration_ms: iter_ms,
                per_iteration_speedup: if iter_ms > 0.0 { h_iter / iter_ms } else { 0.0 },
                overall_speedup: overall,
            });
        }
    }
    Fig8Result { rows }
}

impl Fig8Result {
    /// Looks up a row.
    pub fn row(&self, environment: &str, approach: Approach) -> Option<&Fig8Row> {
        self.rows
            .iter()
            .find(|r| r.environment == environment && r.approach == approach)
    }

    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "environment".into(),
            "approach".into(),
            "per-iter ms".into(),
            "per-iter speedup".into(),
            "overall speedup".into(),
        ])
        .with_title("Figure 8: Transformer speedups over Horovod (8 workers)");
        for r in &self.rows {
            t.row(vec![
                r.environment.to_string(),
                r.approach.name().to_string(),
                fmt_f(r.per_iteration_ms, 1),
                fmt_speedup(r.per_iteration_speedup),
                if r.overall_speedup > 0.0 {
                    fmt_speedup(r.overall_speedup)
                } else {
                    "-".into()
                },
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rna_leads_per_iteration_speedup() {
        let r = run(ExperimentScale::Quick);
        assert_eq!(r.rows.len(), 8);
        for env in ["homogeneous", "heterogeneous"] {
            let rna = r.row(env, Approach::Rna).unwrap();
            let horovod = r.row(env, Approach::Horovod).unwrap();
            assert!(
                rna.per_iteration_speedup > 1.0,
                "{env}: RNA per-iter speedup {}",
                rna.per_iteration_speedup
            );
            assert!((horovod.per_iteration_speedup - 1.0).abs() < 1e-9);
        }
        assert!(r.render().contains("Figure 8"));
    }
}
