//! Figure 10: effect of the number of probe choices on response time.
//!
//! The §8.4 microbenchmark: a simulated 100-node cluster with per-iteration
//! skew uniform in 10–50 ms; at each iteration the controller probes `d`
//! random processes and proceeds when the fastest probed process finishes.
//! One extra probe (d=2) cuts the median response sharply; further probes
//! stop helping because of messaging overhead — hence the paper's probe
//! ratio of 2.

use rna_core::probe::simulate_response_times;
use rna_simnet::{SimDuration, SimRng};
use rna_tensor::stats::Summary;

use crate::common::ExperimentScale;
use crate::table::{fmt_f, Table};

/// One probe-count row (a box in the paper's box plot).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Row {
    /// Number of probes `d`.
    pub choices: usize,
    /// Response-time distribution over the iterations (ms).
    pub summary: Summary,
}

/// The Figure 10 result set.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// One row per probe count (1..=5).
    pub rows: Vec<Fig10Row>,
}

/// Runs the probe-count sensitivity microbenchmark.
pub fn run(scale: ExperimentScale) -> Fig10Result {
    let mut rng = SimRng::seed(1004);
    let iterations = (1_000.0 * scale.time_factor().max(0.1)) as usize;
    let rows = (1..=5)
        .map(|d| {
            let times = simulate_response_times(
                100,
                d,
                iterations,
                SimDuration::from_millis(10),
                SimDuration::from_millis(50),
                SimDuration::from_millis(2),
                &mut rng,
            );
            Fig10Row {
                choices: d,
                summary: Summary::of(&times),
            }
        })
        .collect();
    Fig10Result { rows }
}

impl Fig10Result {
    /// The probe count with the lowest median response.
    pub fn best_choice(&self) -> usize {
        self.rows
            .iter()
            .min_by(|a, b| a.summary.p50.partial_cmp(&b.summary.p50).unwrap())
            .map(|r| r.choices)
            .unwrap_or(1)
    }

    /// Renders the box-plot data as a table (whiskers p5/p95, box
    /// p25/p50/p75 — the paper's convention).
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "choices".into(),
            "p5".into(),
            "p25".into(),
            "median".into(),
            "p75".into(),
            "p95".into(),
            "mean".into(),
        ])
        .with_title("Figure 10: response time (ms) vs number of probe choices, 100 nodes");
        for r in &self.rows {
            let s = &r.summary;
            t.row(vec![
                r.choices.to_string(),
                fmt_f(s.p5, 1),
                fmt_f(s.p25, 1),
                fmt_f(s.p50, 1),
                fmt_f(s.p75, 1),
                fmt_f(s.p95, 1),
                fmt_f(s.mean, 1),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!("best probe count: {}\n", self.best_choice()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_choices_is_the_operating_point() {
        let r = run(ExperimentScale::Paper);
        assert_eq!(r.rows.len(), 5);
        let medians: Vec<f64> = r.rows.iter().map(|row| row.summary.p50).collect();
        // d=2 strictly better than d=1 (the paper's 2.4× median claim in
        // direction; magnitude depends on the unreported skew shape —
        // see EXPERIMENTS.md).
        assert!(medians[1] < medians[0] * 0.95, "{medians:?}");
        // Oversampling stops paying: d=5 is worse than d=2.
        assert!(medians[4] > medians[1], "{medians:?}");
        // The elected operating point is 2 (or 3 at worst, given noise).
        assert!(r.best_choice() <= 3);
        // Spread shrinks from d=1 to d=2.
        let spread = |s: &Summary| s.p75 - s.p25;
        assert!(spread(&r.rows[1].summary) < spread(&r.rows[0].summary));
        assert!(r.render().contains("Figure 10"));
    }
}
