//! Figure 6 + Tables 3 & 4: the headline comparison.
//!
//! Trains ResNet50, VGG16, and LSTM stand-ins under dynamic heterogeneity
//! (0–50 ms random delay) and mixed heterogeneity (group B +50–100 ms,
//! the "M" columns) with Horovod, eager-SGD, AD-PSGD, RNA, and — in the
//! mixed setting — RNA with hierarchical synchronization ("H"). Reports:
//!
//! * **Figure 6** — convergence-time speedup over Horovod,
//! * **Table 3** — final training accuracy per approach,
//! * **Table 4** — iteration counts and best accuracy per approach.
//!
//! Following §8.1, every run terminates by Keras-style early stopping
//! (patience 10): training ends when the evaluation loss stops improving.
//! "Training time" is the virtual time at which the criterion fires, and
//! speedup is the ratio of those times. This is what lets AD-PSGD show a
//! *positive* speedup while landing at the *lowest* accuracy (Tables 3/4)
//! — it reaches its (worse) plateau sooner, exactly the trade-off the
//! paper's Figure 7 discussion describes.

use rna_core::{RnaConfig, RunResult, StopReason};

use crate::common::{
    dynamic_hetero, mixed_hetero, run_approach, Approach, ExperimentScale, Workload,
};
use crate::table::{fmt_f, fmt_pct, fmt_speedup, Table};

/// The heterogeneity setting of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeteroKind {
    /// 0–50 ms random delay on every worker (§8.1).
    Dynamic,
    /// Mixed: group B gets an extra 50–100 ms (the "M" columns).
    Mixed,
}

impl HeteroKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            HeteroKind::Dynamic => "dynamic",
            HeteroKind::Mixed => "mixed",
        }
    }
}

/// One approach's outcome in one configuration.
#[derive(Debug, Clone)]
pub struct Fig6Cell {
    /// Workload name.
    pub workload: &'static str,
    /// Heterogeneity setting.
    pub hetero: HeteroKind,
    /// The approach.
    pub approach: Approach,
    /// Virtual seconds until the early-stopping criterion fired.
    pub train_time_s: f64,
    /// Whether the run actually converged (early-stopped) rather than
    /// exhausting its budget.
    pub converged: bool,
    /// Speedup over Horovod on training time.
    pub speedup: f64,
    /// Final evaluation loss.
    pub final_loss: f64,
    /// Final evaluation accuracy.
    pub final_accuracy: f64,
    /// Best evaluation accuracy seen.
    pub best_accuracy: f64,
    /// Final top-5 accuracy.
    pub top5_accuracy: f64,
    /// Total worker iterations executed.
    pub iterations: u64,
    /// Global synchronization rounds.
    pub rounds: u64,
    /// Mean round time in ms.
    pub round_ms: f64,
    /// Mean per-round participation.
    pub participation: f64,
}

/// The complete Figure 6 / Table 3 / Table 4 result set.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// All cells, grouped by workload, then heterogeneity, then approach.
    pub cells: Vec<Fig6Cell>,
}

fn approaches_for(hetero: HeteroKind) -> Vec<Approach> {
    let mut a = Approach::paper_set().to_vec();
    if hetero == HeteroKind::Mixed {
        a.push(Approach::RnaHier);
    }
    a
}

/// Runs the full comparison (3 workloads × 2 heterogeneity settings ×
/// 4–5 approaches).
pub fn run(scale: ExperimentScale) -> Fig6Result {
    run_workloads(&Workload::figure6_set(), scale)
}

/// Runs the comparison for a chosen subset of workloads (used by the
/// quick benches).
///
/// Early-stopping times are noisy, so every configuration is run over
/// several seeds and the per-approach times/accuracies are averaged before
/// speedups are computed.
pub fn run_workloads(workloads: &[Workload], scale: ExperimentScale) -> Fig6Result {
    let n = 8;
    let seeds: &[u64] = match scale {
        ExperimentScale::Paper => &[1234, 777, 31],
        ExperimentScale::Quick => &[1234],
    };
    let config = RnaConfig::default();
    let mut cells = Vec::new();
    for &w in workloads {
        for hetero in [HeteroKind::Dynamic, HeteroKind::Mixed] {
            let approaches = approaches_for(hetero);
            // results[approach][seed]
            let mut results: Vec<Vec<RunResult>> = vec![Vec::new(); approaches.len()];
            for &seed in seeds {
                let hmodel = match hetero {
                    HeteroKind::Dynamic => dynamic_hetero(n),
                    HeteroKind::Mixed => mixed_hetero(n),
                };
                let mut spec = w.spec(n, hmodel, seed, scale);
                // §8.1: stop when the loss stops improving (patience 10).
                spec.patience = Some(10);
                for (i, &a) in approaches.iter().enumerate() {
                    results[i].push(run_approach(a, &spec, &config));
                }
            }
            let mean_time = |rs: &[RunResult]| {
                rs.iter().map(|r| r.wall_time.as_secs_f64()).sum::<f64>() / rs.len() as f64
            };
            let horovod_time = mean_time(&results[0]);
            for (a, rs) in approaches.iter().zip(&results) {
                cells.push(extract_averaged(w.name(), hetero, *a, rs, horovod_time));
            }
        }
    }
    Fig6Result { cells }
}

fn extract_averaged(
    workload: &'static str,
    hetero: HeteroKind,
    approach: Approach,
    rs: &[RunResult],
    horovod_time: f64,
) -> Fig6Cell {
    let k = rs.len() as f64;
    let mean = |f: &dyn Fn(&RunResult) -> f64| rs.iter().map(f).sum::<f64>() / k;
    let train_time_s = mean(&|r| r.wall_time.as_secs_f64());
    Fig6Cell {
        workload,
        hetero,
        approach,
        train_time_s,
        converged: rs.iter().all(|r| r.stop_reason == StopReason::EarlyStopped),
        speedup: if train_time_s > 0.0 {
            horovod_time / train_time_s
        } else {
            0.0
        },
        final_loss: mean(&|r| r.final_loss().unwrap_or(f64::NAN)),
        final_accuracy: mean(&|r| r.final_accuracy().unwrap_or(0.0)),
        best_accuracy: mean(&|r| r.best_accuracy().unwrap_or(0.0)),
        top5_accuracy: mean(&|r| r.final_top5),
        iterations: (mean(&|r| r.total_iterations() as f64)) as u64,
        rounds: (mean(&|r| r.global_rounds as f64)) as u64,
        round_ms: mean(&|r| r.mean_round_time().as_millis_f64()),
        participation: mean(&|r| r.mean_participation()),
    }
}

impl Fig6Result {
    /// Looks up a cell.
    pub fn cell(
        &self,
        workload: &str,
        hetero: HeteroKind,
        approach: Approach,
    ) -> Option<&Fig6Cell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.hetero == hetero && c.approach == approach)
    }

    /// Renders the Figure 6 speedup chart.
    pub fn render_fig6(&self) -> String {
        let mut t = Table::new(vec![
            "workload".into(),
            "hetero".into(),
            "approach".into(),
            "train time s".into(),
            "speedup vs Horovod".into(),
            "round ms".into(),
            "participation".into(),
        ])
        .with_title(
            "Figure 6: training speedup over Horovod (8 workers, early stopping patience 10)",
        );
        for c in &self.cells {
            t.row(vec![
                c.workload.to_string(),
                c.hetero.name().to_string(),
                c.approach.name().to_string(),
                format!(
                    "{}{}",
                    fmt_f(c.train_time_s, 1),
                    if c.converged { "" } else { "*" }
                ),
                fmt_speedup(c.speedup),
                fmt_f(c.round_ms, 1),
                fmt_pct(c.participation),
            ]);
        }
        let mut out = t.render();
        out.push_str("(* = budget exhausted before the early-stop criterion)\n");
        out
    }

    /// Renders Table 3 (final training accuracy; "(M)" columns are the
    /// mixed-heterogeneity runs).
    pub fn render_table3(&self) -> String {
        let workloads: Vec<&str> = {
            let mut seen = Vec::new();
            for c in &self.cells {
                if !seen.contains(&c.workload) {
                    seen.push(c.workload);
                }
            }
            seen
        };
        let mut headers = vec!["approach".to_string()];
        for w in &workloads {
            headers.push((*w).to_string());
            headers.push(format!("{w}(M)"));
        }
        let mut t = Table::new(headers).with_title("Table 3: final training accuracy");
        let mut approaches: Vec<Approach> = Approach::paper_set().to_vec();
        approaches.push(Approach::RnaHier);
        for a in approaches {
            let mut row = vec![a.name().to_string()];
            for w in &workloads {
                for h in [HeteroKind::Dynamic, HeteroKind::Mixed] {
                    row.push(
                        self.cell(w, h, a)
                            .map_or("-".into(), |c| fmt_pct(c.final_accuracy)),
                    );
                }
            }
            t.row(row);
        }
        t.render()
    }

    /// Renders Table 4 (validation accuracy and iteration counts).
    pub fn render_table4(&self) -> String {
        let mut t = Table::new(vec![
            "model".into(),
            "approach".into(),
            "# iterations".into(),
            "top-1 acc.".into(),
            "top-5 acc.".into(),
        ])
        .with_title("Table 4: validation accuracy (dynamic heterogeneity)");
        for c in &self.cells {
            if c.hetero != HeteroKind::Dynamic {
                continue;
            }
            t.row(vec![
                c.workload.to_string(),
                c.approach.name().to_string(),
                c.iterations.to_string(),
                fmt_pct(c.final_accuracy),
                fmt_pct(c.top5_accuracy),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_comparison_shape() {
        // One workload at quick scale keeps the test affordable while
        // checking every headline property.
        let r = run_workloads(&[Workload::ResNet50], ExperimentScale::Quick);
        // 4 approaches dynamic + 5 mixed.
        assert_eq!(r.cells.len(), 9);

        let rna = r
            .cell("ResNet50", HeteroKind::Dynamic, Approach::Rna)
            .unwrap();
        let horovod = r
            .cell("ResNet50", HeteroKind::Dynamic, Approach::Horovod)
            .unwrap();
        // RNA converges no slower than Horovod under stragglers.
        assert!(
            rna.speedup > 0.9,
            "RNA speedup {} (time {} vs horovod {})",
            rna.speedup,
            rna.train_time_s,
            horovod.train_time_s
        );
        // RNA's rounds are shorter than BSP's.
        assert!(rna.round_ms < horovod.round_ms);
        // BSP participation is 1; RNA's is partial.
        assert!((horovod.participation - 1.0).abs() < 1e-9);
        assert!(rna.participation < 1.0);

        // Rendering covers all three artifacts.
        assert!(r.render_fig6().contains("Figure 6"));
        assert!(r.render_table3().contains("Table 3"));
        assert!(r.render_table4().contains("Table 4"));
    }
}
