//! # rna-ps
//!
//! A parameter-server substrate in the style of ps-lite (§6).
//!
//! The hierarchical synchronization of §4 treats each AllReduce group as one
//! logical "worker" of a traditional PS: the group's elected initiator
//! pushes the group's averaged parameters, the server averages across
//! groups, and the initiator pulls the blended result back to broadcast it
//! within the group. Because groups run at different speeds, the exchange is
//! *asynchronous* — the server never blocks waiting for a group.
//!
//! * [`GroupServer`] — one parameter slot per group, model averaging across
//!   the latest push of each group, per-group version/staleness tracking,
//!   and the paper's atomic `PSPushPull` operation.
//! * [`kv`] — the key-value sharding layer: parameters are split into keyed
//!   shards (ps-lite's interface) so pushes and pulls can be per-key.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod kv;
mod server;

pub use kv::ShardedStore;
pub use server::{staleness_discount, GroupServer};
