//! # rna-ps
//!
//! A parameter-server substrate in the style of ps-lite (§6).
//!
//! The hierarchical synchronization of §4 treats each AllReduce group as one
//! logical "worker" of a traditional PS: the group's elected initiator
//! pushes the group's averaged parameters, the server averages across
//! groups, and the initiator pulls the blended result back to broadcast it
//! within the group. Because groups run at different speeds, the exchange is
//! *asynchronous* — the server never blocks waiting for a group.
//!
//! * [`GroupServer`] — one parameter slot per group, model averaging across
//!   the latest push of each group, per-group version/staleness tracking,
//!   and the paper's atomic `PSPushPull` operation.
//! * [`kv`] — the key-value sharding layer: parameters are split into keyed
//!   shards (ps-lite's interface) so pushes and pulls can be per-key.
//! * [`replica`] — primary/replica mirroring with read-repair: a shard
//!   primary crash degrades that slot to its warm mirror instead of
//!   wedging the exchange.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod kv;
pub mod replica;
mod server;

pub use kv::ShardedStore;
pub use replica::{ReplicatedGroupServer, ReplicatedStore};
pub use server::{staleness_discount, GroupServer};
