//! Key-value parameter sharding (the ps-lite interface).
//!
//! ps-lite exposes parameters as keyed shards so pushes/pulls can be
//! per-layer and the server side can parallelize summation. The flat
//! parameter tensor is split into `num_keys` contiguous shards using the
//! same partitioning as ring chunks.

use rna_tensor::{partition, ChunkRange, Tensor, TensorPool};

/// A tensor store sharded into contiguous keyed ranges.
///
/// # Examples
///
/// ```
/// use rna_ps::ShardedStore;
/// use rna_tensor::Tensor;
///
/// let mut store = ShardedStore::new(Tensor::zeros(10), 3);
/// store.push_key(0, &Tensor::from_vec(vec![1.0; 4]));
/// assert_eq!(store.pull_key(0).as_slice(), &[1.0; 4]);
/// assert_eq!(store.assemble().len(), 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedStore {
    data: Tensor,
    shards: Vec<ChunkRange>,
    versions: Vec<u64>,
}

impl ShardedStore {
    /// Creates a store over `init`, split into `num_keys` shards.
    ///
    /// # Panics
    ///
    /// Panics if `num_keys == 0` or exceeds the tensor length (empty shards
    /// would make keys meaningless).
    pub fn new(init: Tensor, num_keys: usize) -> Self {
        assert!(num_keys > 0, "need at least one key");
        assert!(num_keys <= init.len().max(1), "more keys than parameters");
        let shards = partition(init.len(), num_keys);
        ShardedStore {
            data: init,
            versions: vec![0; num_keys],
            shards,
        }
    }

    /// Number of keys.
    pub fn num_keys(&self) -> usize {
        self.shards.len()
    }

    /// The element range covered by `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn key_range(&self, key: usize) -> ChunkRange {
        self.shards[key]
    }

    /// Overwrites one shard (a per-key push).
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range or the value length differs from the
    /// shard length.
    pub fn push_key(&mut self, key: usize, value: &Tensor) {
        let range = self.shards[key];
        assert_eq!(value.len(), range.len(), "shard length mismatch");
        self.data.write_chunk(range.start, value);
        self.versions[key] += 1;
    }

    /// Reads one shard (a per-key pull).
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn pull_key(&self, key: usize) -> Tensor {
        self.data.slice(self.shards[key].as_range())
    }

    /// [`ShardedStore::pull_key`] drawing the result buffer from `pool` —
    /// with a warm pool a pull allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn pull_key_pooled(&self, key: usize, pool: &mut TensorPool) -> Tensor {
        let range = self.shards[key].as_range();
        let mut out = pool.acquire(range.len());
        out.as_mut_slice()
            .copy_from_slice(&self.data.as_slice()[range]);
        out
    }

    /// Per-key update counter.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn key_version(&self, key: usize) -> u64 {
        self.versions[key]
    }

    /// The full assembled parameter tensor.
    pub fn assemble(&self) -> &Tensor {
        &self.data
    }

    /// Splits a full-size tensor into per-key values aligned with this
    /// store's shards (what a worker does before a sharded push).
    ///
    /// # Panics
    ///
    /// Panics if `full` has a different length than the store.
    pub fn split(&self, full: &Tensor) -> Vec<Tensor> {
        assert_eq!(full.len(), self.data.len(), "tensor length mismatch");
        self.shards
            .iter()
            .map(|r| full.slice(r.as_range()))
            .collect()
    }

    /// [`ShardedStore::split`] drawing the per-key buffers from `pool`;
    /// release them back after the push to keep the cycle allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `full` has a different length than the store.
    pub fn split_pooled(&self, full: &Tensor, pool: &mut TensorPool) -> Vec<Tensor> {
        assert_eq!(full.len(), self.data.len(), "tensor length mismatch");
        self.shards
            .iter()
            .map(|r| {
                let range = r.as_range();
                let mut t = pool.acquire(range.len());
                t.as_mut_slice().copy_from_slice(&full.as_slice()[range]);
                t
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shards_cover_tensor() {
        let store = ShardedStore::new(Tensor::zeros(10), 3);
        assert_eq!(store.num_keys(), 3);
        let total: usize = (0..3).map(|k| store.key_range(k).len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn push_pull_roundtrip() {
        let mut store = ShardedStore::new(Tensor::zeros(7), 2);
        let v = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        store.push_key(0, &v);
        assert_eq!(store.pull_key(0), v);
        assert_eq!(store.key_version(0), 1);
        assert_eq!(store.key_version(1), 0);
    }

    #[test]
    fn split_then_push_reassembles() {
        let full: Tensor = (0..9).map(|i| i as f32).collect();
        let mut store = ShardedStore::new(Tensor::zeros(9), 4);
        for (k, shard) in store.split(&full).iter().enumerate() {
            store.push_key(k, shard);
        }
        assert_eq!(store.assemble(), &full);
    }

    #[test]
    fn pooled_pull_and_split_match_plain_and_recycle() {
        let full: Tensor = (0..11).map(|i| (i as f32).sin()).collect();
        let store = ShardedStore::new(full.clone(), 3);
        let mut pool = TensorPool::new();
        for round in 0..3 {
            for k in 0..store.num_keys() {
                let pooled = store.pull_key_pooled(k, &mut pool);
                assert_eq!(pooled, store.pull_key(k), "round {round} key {k}");
                pool.release(pooled);
            }
            let plain = store.split(&full);
            let pooled = store.split_pooled(&full, &mut pool);
            assert_eq!(plain, pooled);
            for t in pooled {
                pool.release(t);
            }
        }
        assert!(pool.hits() > 0, "shard buffers must be recycled");
    }

    #[test]
    #[should_panic(expected = "shard length mismatch")]
    fn wrong_shard_size_panics() {
        let mut store = ShardedStore::new(Tensor::zeros(10), 2);
        store.push_key(0, &Tensor::zeros(3));
    }

    #[test]
    #[should_panic(expected = "more keys than parameters")]
    fn too_many_keys_panics() {
        ShardedStore::new(Tensor::zeros(2), 3);
    }

    proptest! {
        #[test]
        fn split_push_assemble_identity(len in 1usize..200, keys in 1usize..16) {
            prop_assume!(keys <= len);
            let full: Tensor = (0..len).map(|i| i as f32 * 0.5).collect();
            let mut store = ShardedStore::new(Tensor::zeros(len), keys);
            for (k, shard) in store.split(&full).iter().enumerate() {
                store.push_key(k, shard);
            }
            prop_assert_eq!(store.assemble(), &full);
        }
    }
}
