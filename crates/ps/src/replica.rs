//! Primary/replica mirroring for parameter-server state.
//!
//! A single-copy parameter server is a single point of failure for the
//! hierarchical exchange (§4): if the node holding a group's slot dies,
//! every later push or pull for that slot wedges. This module keeps a
//! warm mirror next to each primary copy:
//!
//! * **Writes** land on the primary only; the mirror catches up lazily via
//!   **read-repair** on the next pull (asynchronous replication — a push
//!   never pays a synchronous second copy).
//! * **A primary crash** ([`ReplicatedGroupServer::kill_primary`]) freezes
//!   that slot at its last-repaired mirror value. Pushes and pulls for the
//!   slot transparently degrade to the mirror; everything else is
//!   unaffected. Writes that landed on the primary after the last
//!   read-repair are lost — the honest cost of asynchronous replication.
//!
//! The blended pull recomputes the cross-slot mean in slot order, exactly
//! like the primary server does, so with every primary alive the
//! replicated server is bit-identical to the plain one.

use rna_tensor::Tensor;

use crate::kv::ShardedStore;
use crate::GroupServer;

/// A [`GroupServer`] whose per-group slots are each mirrored to a warm
/// replica, with read-repair on pull and per-slot primary failover.
///
/// # Examples
///
/// ```
/// use rna_ps::ReplicatedGroupServer;
/// use rna_tensor::Tensor;
///
/// let mut ps = ReplicatedGroupServer::new(Tensor::from_vec(vec![0.0]), 2);
/// ps.push(0, &Tensor::from_vec(vec![2.0]));
/// assert_eq!(ps.pull_slot(0).as_slice(), &[2.0]); // read-repairs the mirror
/// ps.kill_primary(0);
/// assert_eq!(ps.pull_slot(0).as_slice(), &[2.0]); // served by the replica
/// ```
#[derive(Debug, Clone)]
pub struct ReplicatedGroupServer {
    primary: GroupServer,
    /// Replica copy of each slot plus the primary version it mirrors.
    mirror: Vec<(Tensor, u64)>,
    primary_alive: Vec<bool>,
    read_repairs: u64,
    failovers: u64,
}

impl ReplicatedGroupServer {
    /// Creates a replicated server for `num_groups` groups; both copies of
    /// every slot start from `init`.
    ///
    /// # Panics
    ///
    /// Panics if `num_groups == 0` or `init` is empty (the
    /// [`GroupServer::new`] conditions).
    pub fn new(init: Tensor, num_groups: usize) -> Self {
        let primary = GroupServer::new(init.clone(), num_groups);
        ReplicatedGroupServer {
            primary,
            mirror: vec![(init, 0); num_groups],
            primary_alive: vec![true; num_groups],
            read_repairs: 0,
            failovers: 0,
        }
    }

    /// Number of registered groups.
    pub fn num_groups(&self) -> usize {
        self.primary.num_groups()
    }

    /// Whether the slot's primary copy is still alive.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn primary_alive(&self, group: usize) -> bool {
        self.primary_alive[group]
    }

    /// Mirror copies refreshed by read-repair so far.
    pub fn read_repairs(&self) -> u64 {
        self.read_repairs
    }

    /// Primary copies that crashed and degraded to their replica.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// The server's update counter. Version metadata lives on the
    /// controller side and survives shard crashes.
    pub fn version(&self) -> u64 {
        self.primary.version()
    }

    /// How many global updates `group` has missed since its last push
    /// (delegates to the primary's version metadata).
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn staleness(&self, group: usize) -> u64 {
        self.primary.staleness(group)
    }

    /// Stores `params` in the group's slot. With a live primary this is a
    /// plain primary write (the mirror catches up on the next pull); after
    /// a crash the write lands on the replica directly.
    ///
    /// # Panics
    ///
    /// Panics under the [`GroupServer::push`] conditions.
    pub fn push(&mut self, group: usize, params: &Tensor) {
        if self.primary_alive[group] {
            self.primary.push(group, params);
        } else {
            // The replica is now the authoritative copy; keep the version
            // metadata moving so staleness accounting stays meaningful.
            self.primary.push(group, params);
            let (t, v) = &mut self.mirror[group];
            t.copy_from(params);
            *v = self.primary.slot_version(group);
        }
    }

    /// The authoritative value of one slot: the primary copy when alive
    /// (read-repairing the mirror as a side effect), the replica after a
    /// crash.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn pull_slot(&mut self, group: usize) -> &Tensor {
        if self.primary_alive[group] {
            let version = self.primary.slot_version(group);
            if self.mirror[group].1 != version {
                let (t, v) = &mut self.mirror[group];
                t.copy_from(self.primary.slot(group));
                *v = version;
                self.read_repairs += 1;
            }
            self.primary.slot(group)
        } else {
            &self.mirror[group].0
        }
    }

    /// The blended global parameters: the mean over every slot's
    /// authoritative copy, accumulated in slot order — bit-identical to
    /// [`GroupServer::pull`] while every primary is alive.
    pub fn pull_blended(&self) -> Tensor {
        let mut out = Tensor::zeros(self.primary.pull().len());
        for group in 0..self.num_groups() {
            if self.primary_alive[group] {
                out.add_assign(self.primary.slot(group));
            } else {
                out.add_assign(&self.mirror[group].0);
            }
        }
        out.scale(1.0 / self.num_groups() as f32);
        out
    }

    /// Rebuilds the slot layout for a new grouping, seeding every slot
    /// (primary and replica alike) from the blended handoff value
    /// `master`.
    ///
    /// The caller folds every old slot's authoritative copy into `master`
    /// first (e.g. via [`ReplicatedGroupServer::pull_blended`]), so the
    /// handoff is replica-backed: a slot whose primary died contributes
    /// its mirror value to the blend and no pull ever wedges. Returns the
    /// number of slot keys the handoff touched — every old slot drained
    /// plus every new slot seeded.
    ///
    /// Lifetime counters ([`ReplicatedGroupServer::read_repairs`],
    /// [`ReplicatedGroupServer::failovers`]) survive the rebalance. Slot
    /// version metadata restarts from zero and every new primary starts
    /// alive: the new layout is a fresh shard placement, and every group
    /// leaves the swap synchronized to `master`.
    ///
    /// # Panics
    ///
    /// Panics if `new_groups == 0` or `master` is empty (the
    /// [`GroupServer::new`] conditions).
    pub fn rebalance(&mut self, master: &Tensor, new_groups: usize) -> u64 {
        let moved = (self.num_groups() + new_groups) as u64;
        self.primary = GroupServer::new(master.clone(), new_groups);
        self.mirror = vec![(master.clone(), 0); new_groups];
        self.primary_alive = vec![true; new_groups];
        moved
    }

    /// Kills the slot's primary copy: later pushes and pulls for `group`
    /// degrade to the mirror, which holds the value of the last
    /// read-repair — primary writes since then are lost. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn kill_primary(&mut self, group: usize) {
        assert!(group < self.num_groups(), "group out of range");
        if self.primary_alive[group] {
            self.primary_alive[group] = false;
            self.failovers += 1;
        }
    }
}

/// A [`ShardedStore`] with a warm mirror per key: the ps-lite-style
/// key-value layer's answer to a shard-server crash.
///
/// Same contract as [`ReplicatedGroupServer`], per key instead of per
/// group: pushes hit the primary, pulls read-repair the mirror, and
/// [`ReplicatedStore::kill_primary`] degrades one key to its replica.
///
/// # Examples
///
/// ```
/// use rna_ps::ReplicatedStore;
/// use rna_tensor::Tensor;
///
/// let mut store = ReplicatedStore::new(Tensor::zeros(8), 2);
/// store.push_key(0, &Tensor::from_vec(vec![1.0; 4]));
/// assert_eq!(store.pull_key(0).as_slice(), &[1.0; 4]);
/// store.kill_primary(0);
/// store.push_key(0, &Tensor::from_vec(vec![2.0; 4]));
/// assert_eq!(store.pull_key(0).as_slice(), &[2.0; 4]); // replica serves
/// ```
#[derive(Debug, Clone)]
pub struct ReplicatedStore {
    primary: ShardedStore,
    mirror: Vec<Tensor>,
    /// Primary version each mirror copy reflects.
    mirror_version: Vec<u64>,
    primary_alive: Vec<bool>,
    read_repairs: u64,
    failovers: u64,
}

impl ReplicatedStore {
    /// Creates a replicated store over `init` split into `num_keys`
    /// shards; both copies of every shard start from `init`.
    ///
    /// # Panics
    ///
    /// Panics under the [`ShardedStore::new`] conditions.
    pub fn new(init: Tensor, num_keys: usize) -> Self {
        let primary = ShardedStore::new(init, num_keys);
        let mirror = (0..num_keys).map(|k| primary.pull_key(k)).collect();
        ReplicatedStore {
            primary,
            mirror,
            mirror_version: vec![0; num_keys],
            primary_alive: vec![true; num_keys],
            read_repairs: 0,
            failovers: 0,
        }
    }

    /// Number of keys.
    pub fn num_keys(&self) -> usize {
        self.primary.num_keys()
    }

    /// Whether the key's primary copy is still alive.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn primary_alive(&self, key: usize) -> bool {
        self.primary_alive[key]
    }

    /// Mirror copies refreshed by read-repair so far.
    pub fn read_repairs(&self) -> u64 {
        self.read_repairs
    }

    /// Primary copies that crashed and degraded to their replica.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Overwrites one shard. Routes to the primary while it is alive, to
    /// the replica after a crash.
    ///
    /// # Panics
    ///
    /// Panics under the [`ShardedStore::push_key`] conditions.
    pub fn push_key(&mut self, key: usize, value: &Tensor) {
        self.primary.push_key(key, value);
        if !self.primary_alive[key] {
            self.mirror[key].copy_from(value);
            self.mirror_version[key] = self.primary.key_version(key);
        }
    }

    /// Reads one shard's authoritative value, read-repairing the mirror
    /// when the primary is alive.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn pull_key(&mut self, key: usize) -> Tensor {
        if self.primary_alive[key] {
            let version = self.primary.key_version(key);
            if self.mirror_version[key] != version {
                self.mirror[key] = self.primary.pull_key(key);
                self.mirror_version[key] = version;
                self.read_repairs += 1;
            }
            self.primary.pull_key(key)
        } else {
            self.mirror[key].clone()
        }
    }

    /// Kills the key's primary copy: later pulls serve the mirror (frozen
    /// at the last read-repair) and later pushes land on the replica.
    /// Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn kill_primary(&mut self, key: usize) {
        assert!(key < self.num_keys(), "key out of range");
        if self.primary_alive[key] {
            self.primary_alive[key] = false;
            self.failovers += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[f32]) -> Tensor {
        Tensor::from_vec(vals.to_vec())
    }

    #[test]
    fn healthy_replicated_server_matches_plain() {
        let mut plain = GroupServer::new(t(&[0.0, 0.0]), 3);
        let mut repl = ReplicatedGroupServer::new(t(&[0.0, 0.0]), 3);
        for (g, v) in [(0, 1.0f32), (2, -4.0), (1, 2.5), (0, 7.0)] {
            let params = t(&[v, v * 2.0]);
            plain.push(g, &params);
            repl.push(g, &params);
            assert_eq!(plain.pull(), &repl.pull_blended());
            assert_eq!(plain.version(), repl.version());
        }
        assert_eq!(repl.failovers(), 0);
    }

    #[test]
    fn pull_read_repairs_the_mirror() {
        let mut ps = ReplicatedGroupServer::new(t(&[0.0]), 2);
        ps.push(0, &t(&[5.0]));
        assert_eq!(ps.read_repairs(), 0);
        assert_eq!(ps.pull_slot(0).as_slice(), &[5.0]);
        assert_eq!(ps.read_repairs(), 1);
        // Repaired, so a second pull repairs nothing.
        assert_eq!(ps.pull_slot(0).as_slice(), &[5.0]);
        assert_eq!(ps.read_repairs(), 1);
    }

    #[test]
    fn crash_degrades_to_last_repaired_value() {
        let mut ps = ReplicatedGroupServer::new(t(&[0.0]), 2);
        ps.push(0, &t(&[5.0]));
        ps.pull_slot(0); // mirror now holds 5.0
        ps.push(0, &t(&[9.0])); // never repaired → lost on crash
        ps.kill_primary(0);
        assert_eq!(ps.pull_slot(0).as_slice(), &[5.0]);
        assert_eq!(ps.failovers(), 1);
        ps.kill_primary(0); // idempotent
        assert_eq!(ps.failovers(), 1);
    }

    #[test]
    fn dead_slot_accepts_writes_on_the_replica() {
        let mut ps = ReplicatedGroupServer::new(t(&[0.0]), 2);
        ps.kill_primary(1);
        ps.push(1, &t(&[3.0]));
        assert_eq!(ps.pull_slot(1).as_slice(), &[3.0]);
        // The blend sees the replica's value too.
        assert_eq!(ps.pull_blended().as_slice(), &[1.5]);
    }

    #[test]
    fn staleness_metadata_survives_crash() {
        let mut ps = ReplicatedGroupServer::new(t(&[0.0]), 2);
        ps.push(0, &t(&[1.0]));
        ps.kill_primary(0);
        ps.push(1, &t(&[1.0]));
        assert_eq!(ps.staleness(0), 1);
        assert_eq!(ps.staleness(1), 0);
    }

    #[test]
    fn replicated_store_roundtrip_and_failover() {
        let mut store = ReplicatedStore::new(Tensor::zeros(6), 3);
        let v = t(&[1.0, 2.0]);
        store.push_key(1, &v);
        assert_eq!(store.pull_key(1), v);
        assert_eq!(store.read_repairs(), 1);
        store.push_key(1, &t(&[8.0, 8.0])); // unrepaired write
        store.kill_primary(1);
        assert_eq!(store.pull_key(1), v, "mirror frozen at last repair");
        store.push_key(1, &t(&[4.0, 4.0]));
        assert_eq!(store.pull_key(1).as_slice(), &[4.0, 4.0]);
        assert_eq!(store.failovers(), 1);
        // Other keys are unaffected.
        assert!(store.primary_alive(0) && store.primary_alive(2));
        assert_eq!(store.pull_key(0).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn rebalance_reseeds_slots_and_survives_dead_primary() {
        let mut ps = ReplicatedGroupServer::new(t(&[0.0]), 2);
        ps.push(0, &t(&[4.0]));
        ps.pull_slot(0); // mirror now holds 4.0
        ps.kill_primary(0);
        let master = ps.pull_blended(); // (4.0 + 0.0) / 2, replica-backed
        assert_eq!(master.as_slice(), &[2.0]);
        let moved = ps.rebalance(&master, 3);
        assert_eq!(moved, 5, "2 old slots drained + 3 new slots seeded");
        assert_eq!(ps.num_groups(), 3);
        for g in 0..3 {
            assert!(ps.primary_alive(g), "new placement starts healthy");
            assert_eq!(ps.pull_slot(g).as_slice(), &[2.0]);
            assert_eq!(ps.staleness(g), 0);
        }
        assert_eq!(ps.failovers(), 1, "lifetime counters survive");
    }

    #[test]
    #[should_panic(expected = "group out of range")]
    fn kill_unknown_group_panics() {
        ReplicatedGroupServer::new(t(&[0.0]), 1).kill_primary(3);
    }
}
