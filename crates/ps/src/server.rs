use rna_tensor::Tensor;

/// Weight applied to a gradient that sat out `missed` PS exchanges while
/// its group was partitioned from the server: `1 / (1 + missed)`.
///
/// A group that never missed an exchange reconciles at full weight; a
/// long-isolated group's accumulated sum is damped proportionally to its
/// staleness so healing cannot yank the master parameters — the same
/// recency-biased reading the protocol applies to per-worker gradient
/// caches (§3.3), lifted to the group level.
///
/// # Examples
///
/// ```
/// assert_eq!(rna_ps::staleness_discount(0), 1.0);
/// assert_eq!(rna_ps::staleness_discount(3), 0.25);
/// ```
pub fn staleness_discount(missed: u64) -> f32 {
    1.0 / (1.0 + missed as f32)
}

/// A model-averaging parameter server with one slot per registered group.
///
/// Semantics follow §4 and §6 of the paper:
///
/// 1. **push** — a group initiator uploads its group's current parameters;
///    the slot for that group is overwritten and the server's global
///    estimate becomes the mean of all group slots.
/// 2. **update** — only parameter summation / averaging happens on the
///    server (cheap; "modern CPUs are good at summation").
/// 3. **pull** — the caller receives the blended global parameters.
///
/// [`GroupServer::push_pull`] performs all three atomically, matching the
/// paper's `PSPushPull()`; the asynchrony between groups comes from *when*
/// each group calls it, which the protocol engine schedules.
///
/// # Examples
///
/// ```
/// use rna_ps::GroupServer;
/// use rna_tensor::Tensor;
///
/// let mut ps = GroupServer::new(Tensor::from_vec(vec![0.0]), 2);
/// let blended = ps.push_pull(0, &Tensor::from_vec(vec![2.0]));
/// // Group 1 has not pushed yet, so its slot still holds the init value.
/// assert_eq!(blended.as_slice(), &[1.0]);
/// ```
#[derive(Debug, Clone)]
pub struct GroupServer {
    slots: Vec<Tensor>,
    global: Tensor,
    version: u64,
    group_versions: Vec<u64>,
}

impl GroupServer {
    /// Creates a server for `num_groups` groups, every slot initialized to
    /// `init` (all replicas start from the same parameters).
    ///
    /// # Panics
    ///
    /// Panics if `num_groups == 0` or `init` is empty.
    pub fn new(init: Tensor, num_groups: usize) -> Self {
        assert!(num_groups > 0, "need at least one group");
        assert!(!init.is_empty(), "empty parameter vector");
        GroupServer {
            slots: vec![init.clone(); num_groups],
            global: init,
            version: 0,
            group_versions: vec![0; num_groups],
        }
    }

    /// Number of registered groups.
    pub fn num_groups(&self) -> usize {
        self.slots.len()
    }

    /// The server's update counter (increments on every push).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// How many global updates `group` has missed since its last push —
    /// the staleness signal used in the evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn staleness(&self, group: usize) -> u64 {
        self.version - self.group_versions[group]
    }

    /// The raw parameter copy currently held in the group's slot.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn slot(&self, group: usize) -> &Tensor {
        &self.slots[group]
    }

    /// The server version at which the group's slot was last written (0 if
    /// the group never pushed).
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn slot_version(&self, group: usize) -> u64 {
        self.group_versions[group]
    }

    /// Stores `params` in the group's slot and refreshes the global average.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range or the parameter length differs
    /// from the server's.
    pub fn push(&mut self, group: usize, params: &Tensor) {
        assert!(group < self.slots.len(), "group out of range");
        assert_eq!(params.len(), self.global.len(), "parameter length mismatch");
        self.slots[group].copy_from(params);
        self.version += 1;
        self.group_versions[group] = self.version;
        self.recompute_global();
    }

    /// The current blended global parameters.
    pub fn pull(&self) -> &Tensor {
        &self.global
    }

    /// Atomic push + update + pull (`PSPushPull` in the paper). Returns the
    /// blended parameters *including* this push.
    ///
    /// # Panics
    ///
    /// Same conditions as [`GroupServer::push`].
    pub fn push_pull(&mut self, group: usize, params: &Tensor) -> Tensor {
        self.push(group, params);
        self.global.clone()
    }

    /// Push + pull with a *self-weighted* blend: the caller receives
    /// `self_weight · own + (1 − self_weight) · mean(other groups)`.
    ///
    /// `self_weight = 1/num_groups` recovers the plain mean of
    /// [`GroupServer::push_pull`]. Larger self-weights implement
    /// elastic-style coupling: a fast group is only mildly attracted
    /// toward slower groups' stale parameters instead of being averaged
    /// half-way back to them — the practical tuning the paper's
    /// "frequency tuning as future work" remark leaves open.
    ///
    /// # Panics
    ///
    /// Panics under the [`GroupServer::push`] conditions, or if
    /// `self_weight` is outside `[0, 1]`.
    pub fn push_pull_weighted(
        &mut self,
        group: usize,
        params: &Tensor,
        self_weight: f32,
    ) -> Tensor {
        assert!(
            (0.0..=1.0).contains(&self_weight),
            "self weight must be in [0, 1]"
        );
        self.push(group, params);
        if self.slots.len() == 1 {
            return params.clone();
        }
        let mut others = Tensor::zeros(self.global.len());
        for (g, slot) in self.slots.iter().enumerate() {
            if g != group {
                others.add_assign(slot);
            }
        }
        others.scale(1.0 / (self.slots.len() - 1) as f32);
        let mut blended = params.clone();
        blended.lerp(&others, 1.0 - self_weight);
        blended
    }

    fn recompute_global(&mut self) {
        self.global.fill_zero();
        for slot in &self.slots {
            self.global.add_assign(slot);
        }
        self.global.scale(1.0 / self.slots.len() as f32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn staleness_discount_decays_harmonically() {
        assert_eq!(staleness_discount(0), 1.0);
        assert_eq!(staleness_discount(1), 0.5);
        assert_eq!(staleness_discount(4), 0.2);
        assert!(staleness_discount(1_000_000) > 0.0);
    }

    #[test]
    fn single_group_passthrough() {
        let mut ps = GroupServer::new(Tensor::from_vec(vec![0.0, 0.0]), 1);
        let out = ps.push_pull(0, &Tensor::from_vec(vec![3.0, 4.0]));
        assert_eq!(out.as_slice(), &[3.0, 4.0]);
        assert_eq!(ps.num_groups(), 1);
    }

    #[test]
    fn global_is_mean_of_slots() {
        let mut ps = GroupServer::new(Tensor::from_vec(vec![0.0]), 2);
        ps.push(0, &Tensor::from_vec(vec![2.0]));
        ps.push(1, &Tensor::from_vec(vec![4.0]));
        assert_eq!(ps.pull().as_slice(), &[3.0]);
    }

    #[test]
    fn repeated_push_overwrites_slot() {
        let mut ps = GroupServer::new(Tensor::from_vec(vec![0.0]), 2);
        ps.push(0, &Tensor::from_vec(vec![2.0]));
        ps.push(0, &Tensor::from_vec(vec![6.0]));
        // Slot 1 is still at 0.0 → global (6 + 0) / 2.
        assert_eq!(ps.pull().as_slice(), &[3.0]);
    }

    #[test]
    fn versions_and_staleness() {
        let mut ps = GroupServer::new(Tensor::from_vec(vec![0.0]), 3);
        assert_eq!(ps.version(), 0);
        assert_eq!(ps.staleness(2), 0);
        ps.push(0, &Tensor::from_vec(vec![1.0]));
        ps.push(1, &Tensor::from_vec(vec![1.0]));
        assert_eq!(ps.version(), 2);
        assert_eq!(ps.staleness(0), 1); // one update since its push
        assert_eq!(ps.staleness(1), 0);
        assert_eq!(ps.staleness(2), 2); // never pushed
    }

    #[test]
    fn async_groups_see_each_others_progress() {
        // Group 1 pushes twice while group 0 is slow; group 0's next pull
        // reflects group 1's latest state — the mechanism that stops slow
        // groups drifting (deterministic slowdown mitigation, §4).
        let mut ps = GroupServer::new(Tensor::from_vec(vec![0.0]), 2);
        ps.push_pull(1, &Tensor::from_vec(vec![10.0]));
        ps.push_pull(1, &Tensor::from_vec(vec![20.0]));
        let seen_by_0 = ps.push_pull(0, &Tensor::from_vec(vec![0.0]));
        assert_eq!(seen_by_0.as_slice(), &[10.0]);
    }

    #[test]
    #[should_panic(expected = "group out of range")]
    fn push_to_unknown_group_panics() {
        let mut ps = GroupServer::new(Tensor::from_vec(vec![0.0]), 1);
        ps.push(1, &Tensor::from_vec(vec![0.0]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn push_wrong_length_panics() {
        let mut ps = GroupServer::new(Tensor::from_vec(vec![0.0]), 1);
        ps.push(0, &Tensor::from_vec(vec![0.0, 1.0]));
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_panics() {
        GroupServer::new(Tensor::from_vec(vec![0.0]), 0);
    }

    proptest! {
        #[test]
        fn global_stays_in_convex_hull(
            pushes in proptest::collection::vec((0usize..4, -100.0f32..100.0), 1..20),
        ) {
            let mut ps = GroupServer::new(Tensor::from_vec(vec![0.0]), 4);
            let mut lo = 0.0f32;
            let mut hi = 0.0f32;
            for (g, v) in pushes {
                ps.push(g, &Tensor::from_vec(vec![v]));
                lo = lo.min(v);
                hi = hi.max(v);
                let global = ps.pull().as_slice()[0];
                prop_assert!(global >= lo - 1e-4 && global <= hi + 1e-4);
            }
        }
    }
}
