//! Loss primitives shared by the models: numerically stable softmax
//! cross-entropy and mean-squared error.

/// Numerically stable softmax of `logits` (log-sum-exp trick).
///
/// # Panics
///
/// Panics if `logits` is empty.
///
/// # Examples
///
/// ```
/// let p = rna_training::loss::softmax(&[1.0, 1.0]);
/// assert!((p[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    assert!(!logits.is_empty(), "softmax of empty logits");
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Cross-entropy loss `-log p[label]` with probabilities clamped away from
/// zero for stability.
///
/// # Panics
///
/// Panics if `label` is out of range.
pub fn cross_entropy(probs: &[f32], label: usize) -> f32 {
    assert!(label < probs.len(), "label out of range");
    -probs[label].max(1e-12).ln()
}

/// Softmax cross-entropy and its gradient with respect to the logits:
/// returns `(loss, dL/dlogits)` where the gradient is `p - onehot(label)`.
///
/// # Panics
///
/// Panics if `logits` is empty or `label` is out of range.
pub fn softmax_xent_grad(logits: &[f32], label: usize) -> (f32, Vec<f32>) {
    let mut probs = softmax(logits);
    let loss = cross_entropy(&probs, label);
    probs[label] -= 1.0;
    (loss, probs)
}

/// Squared error `0.5 (pred - target)²` and its gradient `pred - target`.
pub fn mse_grad(pred: f32, target: f32) -> (f32, f32) {
    let diff = pred - target;
    (0.5 * diff * diff, diff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[0.5, 1.5, -2.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let p = softmax(&[1000.0, 0.0]);
        assert!((p[0] - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn cross_entropy_of_confident_correct_is_small() {
        assert!(cross_entropy(&[0.99, 0.01], 0) < 0.02);
        assert!(cross_entropy(&[0.01, 0.99], 0) > 4.0);
    }

    #[test]
    fn xent_grad_matches_finite_difference() {
        let logits = [0.3f32, -0.7, 1.1];
        let label = 2;
        let (_, grad) = softmax_xent_grad(&logits, label);
        let eps = 1e-3;
        for i in 0..3 {
            let mut plus = logits;
            plus[i] += eps;
            let mut minus = logits;
            minus[i] -= eps;
            let lp = cross_entropy(&softmax(&plus), label);
            let lm = cross_entropy(&softmax(&minus), label);
            let fd = (lp - lm) / (2.0 * eps);
            assert!((grad[i] - fd).abs() < 1e-3, "dim {i}: {} vs {fd}", grad[i]);
        }
    }

    #[test]
    fn mse_grad_matches_finite_difference() {
        let (loss, grad) = mse_grad(2.0, 0.5);
        assert!((loss - 0.5 * 1.5 * 1.5).abs() < 1e-6);
        assert!((grad - 1.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn softmax_empty_panics() {
        softmax(&[]);
    }

    proptest! {
        #[test]
        fn xent_grad_sums_to_zero(
            logits in proptest::collection::vec(-5.0f32..5.0, 2..8),
        ) {
            let (_, grad) = softmax_xent_grad(&logits, 0);
            let sum: f32 = grad.iter().sum();
            // p sums to 1, one-hot sums to 1 → gradient sums to 0.
            prop_assert!(sum.abs() < 1e-5);
        }

        #[test]
        fn xent_loss_nonnegative(
            logits in proptest::collection::vec(-5.0f32..5.0, 2..8),
        ) {
            let (loss, _) = softmax_xent_grad(&logits, logits.len() - 1);
            prop_assert!(loss >= 0.0);
        }
    }
}
