//! Differentiable models.
//!
//! Every model stores its parameters as one flat [`Tensor`] — the same
//! flattened view a Horovod-style AllReduce synchronizes — and computes real
//! gradients by backpropagation. Gradient correctness is verified against
//! finite differences in the tests, so convergence results downstream are
//! genuine optimization dynamics.

use rna_simnet::SimRng;
use rna_tensor::Tensor;

use crate::dataset::Batch;
use crate::loss::{mse_grad, softmax_xent_grad};

/// A supervised model trained by mini-batch SGD.
///
/// Implementations are exchangeable replicas: the protocol engines clone one
/// template model per worker and keep the replicas in sync through
/// collectives.
pub trait Model: Send {
    /// Short human-readable name.
    fn name(&self) -> &'static str;

    /// Number of trainable parameters.
    fn num_params(&self) -> usize;

    /// The flattened parameter vector.
    fn params(&self) -> &Tensor;

    /// Overwrites the parameters.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from [`Model::num_params`].
    fn set_params(&mut self, p: &Tensor);

    /// Mean loss over the batch and its gradient w.r.t. the parameters.
    fn loss_and_grad(&self, batch: &Batch<'_>) -> (f32, Tensor);

    /// Mean loss over the batch.
    fn loss(&self, batch: &Batch<'_>) -> f32 {
        self.loss_and_grad(batch).0
    }

    /// Classification accuracy over the batch (0.0 for regression models).
    fn accuracy(&self, batch: &Batch<'_>) -> f32;

    /// Per-class scores (logits) for sample `i` of the batch's dataset, or
    /// `None` for non-classification models.
    fn class_scores(&self, batch: &Batch<'_>, i: usize) -> Option<Vec<f32>> {
        let _ = (batch, i);
        None
    }

    /// Top-`k` accuracy over the batch: the fraction of samples whose true
    /// label is among the `k` highest-scoring classes (0.0 for regression
    /// models or an empty batch). Table 4 of the paper reports top-1 and
    /// top-5.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    fn top_k_accuracy(&self, batch: &Batch<'_>, k: usize) -> f32 {
        assert!(k > 0, "k must be at least one");
        if batch.is_empty() {
            return 0.0;
        }
        let ds = batch.dataset();
        let mut correct = 0usize;
        let mut scored = 0usize;
        for &i in batch.indices() {
            let Some(scores) = self.class_scores(batch, i) else {
                return 0.0;
            };
            scored += 1;
            let mut order: Vec<usize> = (0..scores.len()).collect();
            order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("NaN score"));
            if order.iter().take(k).any(|&c| c == ds.label(i)) {
                correct += 1;
            }
        }
        correct as f32 / scored.max(1) as f32
    }

    /// A boxed deep copy (replica for another worker).
    fn clone_model(&self) -> Box<dyn Model>;
}

impl Clone for Box<dyn Model> {
    fn clone(&self) -> Self {
        self.clone_model()
    }
}

fn init_params(n: usize, scale: f32, rng: &mut SimRng) -> Tensor {
    (0..n).map(|_| rng.uniform_init(scale)).collect()
}

/// A linear softmax classifier (`logits = W x + b`) — convex, so every
/// convergence comparison on it is deterministic in shape.
///
/// # Examples
///
/// ```
/// use rna_simnet::SimRng;
/// use rna_training::{model::SoftmaxClassifier, Dataset, Model};
///
/// let mut rng = SimRng::seed(0);
/// let ds = Dataset::blobs(64, 4, 3, 0.2, &mut rng);
/// let model = SoftmaxClassifier::new(4, 3, &mut rng);
/// let (loss, grad) = model.loss_and_grad(&ds.full_batch());
/// assert!(loss > 0.0);
/// assert_eq!(grad.len(), model.num_params());
/// ```
#[derive(Debug, Clone)]
pub struct SoftmaxClassifier {
    dim: usize,
    classes: usize,
    params: Tensor,
}

impl SoftmaxClassifier {
    /// Creates a classifier with small random weights.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `classes < 2`.
    pub fn new(dim: usize, classes: usize, rng: &mut SimRng) -> Self {
        assert!(dim > 0, "input dimension must be positive");
        assert!(classes >= 2, "need at least two classes");
        SoftmaxClassifier {
            dim,
            classes,
            params: init_params(classes * dim + classes, 0.01, rng),
        }
    }

    fn logits(&self, x: &[f32]) -> Vec<f32> {
        let p = self.params.as_slice();
        (0..self.classes)
            .map(|c| {
                let row = &p[c * self.dim..(c + 1) * self.dim];
                let b = p[self.classes * self.dim + c];
                row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f32>() + b
            })
            .collect()
    }
}

impl Model for SoftmaxClassifier {
    fn name(&self) -> &'static str {
        "softmax"
    }

    fn num_params(&self) -> usize {
        self.classes * self.dim + self.classes
    }

    fn params(&self) -> &Tensor {
        &self.params
    }

    fn set_params(&mut self, p: &Tensor) {
        assert_eq!(p.len(), self.num_params(), "parameter length mismatch");
        self.params.copy_from(p);
    }

    fn loss_and_grad(&self, batch: &Batch<'_>) -> (f32, Tensor) {
        let mut grad = Tensor::zeros(self.num_params());
        let mut total = 0.0f32;
        let ds = batch.dataset();
        for &i in batch.indices() {
            let x = ds.input(i);
            let (loss, dlogits) = softmax_xent_grad(&self.logits(x), ds.label(i));
            total += loss;
            let g = grad.as_mut_slice();
            for c in 0..self.classes {
                let dc = dlogits[c];
                for (d, &xi) in x.iter().enumerate() {
                    g[c * self.dim + d] += dc * xi;
                }
                g[self.classes * self.dim + c] += dc;
            }
        }
        let n = batch.len().max(1) as f32;
        grad.scale(1.0 / n);
        (total / n, grad)
    }

    fn accuracy(&self, batch: &Batch<'_>) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        let ds = batch.dataset();
        let correct = batch
            .indices()
            .iter()
            .filter(|&&i| {
                let logits = self.logits(ds.input(i));
                let pred = logits
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(c, _)| c)
                    .unwrap();
                pred == ds.label(i)
            })
            .count();
        correct as f32 / batch.len() as f32
    }

    fn class_scores(&self, batch: &Batch<'_>, i: usize) -> Option<Vec<f32>> {
        Some(self.logits(batch.dataset().input(i)))
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

/// A one-hidden-layer MLP with tanh activation and softmax output — the
/// non-convex stand-in for the CNN workloads.
#[derive(Debug, Clone)]
pub struct Mlp {
    dim: usize,
    hidden: usize,
    classes: usize,
    params: Tensor,
}

impl Mlp {
    /// Creates an MLP with Xavier-ish initialization.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `classes < 2`.
    pub fn new(dim: usize, hidden: usize, classes: usize, rng: &mut SimRng) -> Self {
        assert!(dim > 0 && hidden > 0, "dimensions must be positive");
        assert!(classes >= 2, "need at least two classes");
        let n = hidden * dim + hidden + classes * hidden + classes;
        let scale = (1.0 / dim as f32).sqrt();
        Mlp {
            dim,
            hidden,
            classes,
            params: init_params(n, scale, rng),
        }
    }

    // Parameter layout offsets.
    fn off_b1(&self) -> usize {
        self.hidden * self.dim
    }
    fn off_w2(&self) -> usize {
        self.off_b1() + self.hidden
    }
    fn off_b2(&self) -> usize {
        self.off_w2() + self.classes * self.hidden
    }

    /// Forward pass: returns `(hidden_activations, logits)`.
    fn forward(&self, x: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let p = self.params.as_slice();
        let h: Vec<f32> = (0..self.hidden)
            .map(|j| {
                let row = &p[j * self.dim..(j + 1) * self.dim];
                let pre =
                    row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f32>() + p[self.off_b1() + j];
                pre.tanh()
            })
            .collect();
        let logits: Vec<f32> = (0..self.classes)
            .map(|c| {
                let row =
                    &p[self.off_w2() + c * self.hidden..self.off_w2() + (c + 1) * self.hidden];
                row.iter().zip(&h).map(|(w, hj)| w * hj).sum::<f32>() + p[self.off_b2() + c]
            })
            .collect();
        (h, logits)
    }
}

impl Model for Mlp {
    fn name(&self) -> &'static str {
        "mlp"
    }

    fn num_params(&self) -> usize {
        self.hidden * self.dim + self.hidden + self.classes * self.hidden + self.classes
    }

    fn params(&self) -> &Tensor {
        &self.params
    }

    fn set_params(&mut self, p: &Tensor) {
        assert_eq!(p.len(), self.num_params(), "parameter length mismatch");
        self.params.copy_from(p);
    }

    fn loss_and_grad(&self, batch: &Batch<'_>) -> (f32, Tensor) {
        let mut grad = Tensor::zeros(self.num_params());
        let mut total = 0.0f32;
        let ds = batch.dataset();
        let p = self.params.as_slice();
        for &i in batch.indices() {
            let x = ds.input(i);
            let (h, logits) = self.forward(x);
            let (loss, dlogits) = softmax_xent_grad(&logits, ds.label(i));
            total += loss;
            let g = grad.as_mut_slice();
            // Output layer.
            let mut dh = vec![0.0f32; self.hidden];
            for c in 0..self.classes {
                let dc = dlogits[c];
                for j in 0..self.hidden {
                    g[self.off_w2() + c * self.hidden + j] += dc * h[j];
                    dh[j] += dc * p[self.off_w2() + c * self.hidden + j];
                }
                g[self.off_b2() + c] += dc;
            }
            // Hidden layer (tanh' = 1 - h²).
            for j in 0..self.hidden {
                let dpre = dh[j] * (1.0 - h[j] * h[j]);
                for (d, &xi) in x.iter().enumerate() {
                    g[j * self.dim + d] += dpre * xi;
                }
                g[self.off_b1() + j] += dpre;
            }
        }
        let n = batch.len().max(1) as f32;
        grad.scale(1.0 / n);
        (total / n, grad)
    }

    fn accuracy(&self, batch: &Batch<'_>) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        let ds = batch.dataset();
        let correct = batch
            .indices()
            .iter()
            .filter(|&&i| {
                let (_, logits) = self.forward(ds.input(i));
                let pred = logits
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(c, _)| c)
                    .unwrap();
                pred == ds.label(i)
            })
            .count();
        correct as f32 / batch.len() as f32
    }

    fn class_scores(&self, batch: &Batch<'_>, i: usize) -> Option<Vec<f32>> {
        Some(self.forward(batch.dataset().input(i)).1)
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

/// Plain linear regression with MSE loss — the convergence-analysis
/// workhorse in the tests (its optimum is known in closed form).
#[derive(Debug, Clone)]
pub struct LinearRegression {
    dim: usize,
    params: Tensor,
}

impl LinearRegression {
    /// Creates a regressor initialized at zero.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "input dimension must be positive");
        LinearRegression {
            dim,
            params: Tensor::zeros(dim + 1),
        }
    }

    fn predict(&self, x: &[f32]) -> f32 {
        let p = self.params.as_slice();
        p[..self.dim]
            .iter()
            .zip(x)
            .map(|(w, xi)| w * xi)
            .sum::<f32>()
            + p[self.dim]
    }
}

impl Model for LinearRegression {
    fn name(&self) -> &'static str {
        "linreg"
    }

    fn num_params(&self) -> usize {
        self.dim + 1
    }

    fn params(&self) -> &Tensor {
        &self.params
    }

    fn set_params(&mut self, p: &Tensor) {
        assert_eq!(p.len(), self.num_params(), "parameter length mismatch");
        self.params.copy_from(p);
    }

    fn loss_and_grad(&self, batch: &Batch<'_>) -> (f32, Tensor) {
        let mut grad = Tensor::zeros(self.num_params());
        let mut total = 0.0f32;
        let ds = batch.dataset();
        for &i in batch.indices() {
            let x = ds.input(i);
            let (loss, dpred) = mse_grad(self.predict(x), ds.target(i));
            total += loss;
            let g = grad.as_mut_slice();
            for (d, &xi) in x.iter().enumerate() {
                g[d] += dpred * xi;
            }
            g[self.dim] += dpred;
        }
        let n = batch.len().max(1) as f32;
        grad.scale(1.0 / n);
        (total / n, grad)
    }

    fn accuracy(&self, _batch: &Batch<'_>) -> f32 {
        0.0
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

/// An Elman recurrent network trained with full back-propagation through
/// time — the variable-length stand-in for the paper's LSTM:
///
/// ```text
/// h_t = tanh(Wx x_t + Wh h_{t−1} + bh),   logits = Wo h_T + bo
/// ```
///
/// Compute cost is genuinely proportional to sequence length, reproducing
/// the §2.3.1 imbalance at the numerical level, not just the timing level.
#[derive(Debug, Clone)]
pub struct ElmanRnn {
    dim: usize,
    hidden: usize,
    classes: usize,
    params: Tensor,
}

impl ElmanRnn {
    /// Creates an RNN with small random weights.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `classes < 2`.
    pub fn new(dim: usize, hidden: usize, classes: usize, rng: &mut SimRng) -> Self {
        assert!(dim > 0 && hidden > 0, "dimensions must be positive");
        assert!(classes >= 2, "need at least two classes");
        let n = hidden * dim + hidden * hidden + hidden + classes * hidden + classes;
        let scale = (1.0 / (dim + hidden) as f32).sqrt();
        ElmanRnn {
            dim,
            hidden,
            classes,
            params: init_params(n, scale, rng),
        }
    }

    fn off_wh(&self) -> usize {
        self.hidden * self.dim
    }
    fn off_bh(&self) -> usize {
        self.off_wh() + self.hidden * self.hidden
    }
    fn off_wo(&self) -> usize {
        self.off_bh() + self.hidden
    }
    fn off_bo(&self) -> usize {
        self.off_wo() + self.classes * self.hidden
    }

    /// Unrolls the network over a sequence; returns hidden states per step
    /// (index 0 is the initial zero state) and final logits.
    fn forward(&self, seq: &[f32], len: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        let p = self.params.as_slice();
        let mut hs: Vec<Vec<f32>> = Vec::with_capacity(len + 1);
        hs.push(vec![0.0; self.hidden]);
        for t in 0..len {
            let x = &seq[t * self.dim..(t + 1) * self.dim];
            let prev = &hs[t];
            let h: Vec<f32> = (0..self.hidden)
                .map(|j| {
                    let wx = &p[j * self.dim..(j + 1) * self.dim];
                    let wh =
                        &p[self.off_wh() + j * self.hidden..self.off_wh() + (j + 1) * self.hidden];
                    let pre = wx.iter().zip(x).map(|(w, xi)| w * xi).sum::<f32>()
                        + wh.iter().zip(prev).map(|(w, hi)| w * hi).sum::<f32>()
                        + p[self.off_bh() + j];
                    pre.tanh()
                })
                .collect();
            hs.push(h);
        }
        let last = &hs[len];
        let logits: Vec<f32> = (0..self.classes)
            .map(|c| {
                let row =
                    &p[self.off_wo() + c * self.hidden..self.off_wo() + (c + 1) * self.hidden];
                row.iter().zip(last).map(|(w, hj)| w * hj).sum::<f32>() + p[self.off_bo() + c]
            })
            .collect();
        (hs, logits)
    }
}

impl Model for ElmanRnn {
    fn name(&self) -> &'static str {
        "rnn"
    }

    fn num_params(&self) -> usize {
        self.hidden * self.dim
            + self.hidden * self.hidden
            + self.hidden
            + self.classes * self.hidden
            + self.classes
    }

    fn params(&self) -> &Tensor {
        &self.params
    }

    fn set_params(&mut self, p: &Tensor) {
        assert_eq!(p.len(), self.num_params(), "parameter length mismatch");
        self.params.copy_from(p);
    }

    fn loss_and_grad(&self, batch: &Batch<'_>) -> (f32, Tensor) {
        let mut grad = Tensor::zeros(self.num_params());
        let mut total = 0.0f32;
        let ds = batch.dataset();
        let p = self.params.as_slice();
        for &i in batch.indices() {
            let len = ds.seq_len(i);
            let seq = ds.input(i);
            let (hs, logits) = self.forward(seq, len);
            let (loss, dlogits) = softmax_xent_grad(&logits, ds.label(i));
            total += loss;
            let g = grad.as_mut_slice();
            // Output layer → gradient into the final hidden state.
            let mut dh = vec![0.0f32; self.hidden];
            for c in 0..self.classes {
                let dc = dlogits[c];
                for j in 0..self.hidden {
                    g[self.off_wo() + c * self.hidden + j] += dc * hs[len][j];
                    dh[j] += dc * p[self.off_wo() + c * self.hidden + j];
                }
                g[self.off_bo() + c] += dc;
            }
            // BPTT over all time steps.
            for t in (0..len).rev() {
                let x = &seq[t * self.dim..(t + 1) * self.dim];
                let h = &hs[t + 1];
                let prev = &hs[t];
                let mut dprev = vec![0.0f32; self.hidden];
                for j in 0..self.hidden {
                    let dpre = dh[j] * (1.0 - h[j] * h[j]);
                    for (d, &xi) in x.iter().enumerate() {
                        g[j * self.dim + d] += dpre * xi;
                    }
                    for k in 0..self.hidden {
                        g[self.off_wh() + j * self.hidden + k] += dpre * prev[k];
                        dprev[k] += dpre * p[self.off_wh() + j * self.hidden + k];
                    }
                    g[self.off_bh() + j] += dpre;
                }
                dh = dprev;
            }
        }
        let n = batch.len().max(1) as f32;
        grad.scale(1.0 / n);
        (total / n, grad)
    }

    fn accuracy(&self, batch: &Batch<'_>) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        let ds = batch.dataset();
        let correct = batch
            .indices()
            .iter()
            .filter(|&&i| {
                let (_, logits) = self.forward(ds.input(i), ds.seq_len(i));
                let pred = logits
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(c, _)| c)
                    .unwrap();
                pred == ds.label(i)
            })
            .count();
        correct as f32 / batch.len() as f32
    }

    fn class_scores(&self, batch: &Batch<'_>, i: usize) -> Option<Vec<f32>> {
        let ds = batch.dataset();
        Some(self.forward(ds.input(i), ds.seq_len(i)).1)
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::optimizer::Sgd;

    /// Finite-difference check of a model's analytic gradient.
    fn check_gradient(model: &mut dyn Model, batch: &Batch<'_>, tol: f32) {
        let (_, grad) = model.loss_and_grad(batch);
        let base = model.params().clone();
        let eps = 1e-3;
        // Spot-check a spread of coordinates to keep the test fast.
        let n = model.num_params();
        let step = (n / 17).max(1);
        for idx in (0..n).step_by(step) {
            let mut plus = base.clone();
            plus[idx] += eps;
            model.set_params(&plus);
            let lp = model.loss(batch);
            let mut minus = base.clone();
            minus[idx] -= eps;
            model.set_params(&minus);
            let lm = model.loss(batch);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (grad[idx] - fd).abs() < tol,
                "param {idx}: analytic {} vs fd {fd}",
                grad[idx]
            );
        }
        model.set_params(&base);
    }

    #[test]
    fn softmax_gradient_matches_finite_difference() {
        let mut rng = SimRng::seed(1);
        let ds = Dataset::blobs(16, 5, 3, 0.3, &mut rng);
        let mut m = SoftmaxClassifier::new(5, 3, &mut rng);
        check_gradient(&mut m, &ds.full_batch(), 2e-3);
    }

    #[test]
    fn mlp_gradient_matches_finite_difference() {
        let mut rng = SimRng::seed(2);
        let ds = Dataset::blobs(12, 4, 3, 0.3, &mut rng);
        let mut m = Mlp::new(4, 6, 3, &mut rng);
        check_gradient(&mut m, &ds.full_batch(), 2e-3);
    }

    #[test]
    fn linreg_gradient_matches_finite_difference() {
        let mut rng = SimRng::seed(3);
        let ds = Dataset::regression(16, 4, 0.1, &mut rng);
        let mut m = LinearRegression::new(4);
        check_gradient(&mut m, &ds.full_batch(), 2e-3);
    }

    #[test]
    fn rnn_gradient_matches_finite_difference() {
        let mut rng = SimRng::seed(4);
        let lens = [3usize, 5, 2, 4];
        let ds = Dataset::sequences(&lens, 3, 2, 0.2, &mut rng);
        let mut m = ElmanRnn::new(3, 5, 2, &mut rng);
        check_gradient(&mut m, &ds.full_batch(), 3e-3);
    }

    #[test]
    fn sgd_reduces_softmax_loss() {
        let mut rng = SimRng::seed(5);
        let ds = Dataset::blobs(200, 6, 3, 0.3, &mut rng);
        let mut m = SoftmaxClassifier::new(6, 3, &mut rng);
        let batch = ds.full_batch();
        let initial = m.loss(&batch);
        let mut opt = Sgd::new(0.5, 0.0, 0.0, m.num_params());
        for _ in 0..100 {
            let (_, g) = m.loss_and_grad(&batch);
            let mut p = m.params().clone();
            opt.step(&mut p, &g, 1.0);
            m.set_params(&p);
        }
        let trained = m.loss(&batch);
        assert!(trained < initial * 0.5, "loss {initial} -> {trained}");
        assert!(m.accuracy(&batch) > 0.9);
    }

    #[test]
    fn sgd_trains_rnn_on_sequences() {
        let mut rng = SimRng::seed(6);
        let lens: Vec<usize> = (0..120).map(|_| 3 + (rng.choose_one(6))).collect();
        let ds = Dataset::sequences(&lens, 3, 2, 0.3, &mut rng);
        let mut m = ElmanRnn::new(3, 8, 2, &mut rng);
        let batch = ds.full_batch();
        let initial = m.loss(&batch);
        let mut opt = Sgd::new(0.3, 0.5, 0.0, m.num_params());
        for _ in 0..120 {
            let (_, g) = m.loss_and_grad(&batch);
            let mut p = m.params().clone();
            opt.step(&mut p, &g, 1.0);
            m.set_params(&p);
        }
        assert!(m.loss(&batch) < initial * 0.6);
        assert!(m.accuracy(&batch) > 0.8);
    }

    #[test]
    fn linreg_recovers_ground_truth() {
        let mut rng = SimRng::seed(7);
        let ds = Dataset::regression(300, 3, 0.0, &mut rng);
        let mut m = LinearRegression::new(3);
        let batch = ds.full_batch();
        let mut opt = Sgd::new(0.1, 0.0, 0.0, m.num_params());
        for _ in 0..500 {
            let (_, g) = m.loss_and_grad(&batch);
            let mut p = m.params().clone();
            opt.step(&mut p, &g, 1.0);
            m.set_params(&p);
        }
        assert!(m.loss(&batch) < 1e-3);
        assert_eq!(m.accuracy(&batch), 0.0);
    }

    #[test]
    fn clone_model_is_independent() {
        let mut rng = SimRng::seed(8);
        let m = SoftmaxClassifier::new(3, 2, &mut rng);
        let mut c = m.clone_model();
        c.set_params(&Tensor::zeros(m.num_params()));
        assert_ne!(m.params().as_slice(), c.params().as_slice());
        assert_eq!(m.name(), c.name());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_params_validates_length() {
        let mut rng = SimRng::seed(9);
        let mut m = SoftmaxClassifier::new(3, 2, &mut rng);
        m.set_params(&Tensor::zeros(1));
    }

    #[test]
    fn num_params_layouts() {
        let mut rng = SimRng::seed(10);
        assert_eq!(SoftmaxClassifier::new(4, 3, &mut rng).num_params(), 15);
        assert_eq!(Mlp::new(4, 5, 3, &mut rng).num_params(), 4 * 5 + 5 + 15 + 3);
        assert_eq!(LinearRegression::new(4).num_params(), 5);
        assert_eq!(
            ElmanRnn::new(3, 4, 2, &mut rng).num_params(),
            12 + 16 + 4 + 8 + 2
        );
    }

    #[test]
    fn top_k_accuracy_ranks_classes() {
        let mut rng = SimRng::seed(20);
        let ds = Dataset::blobs(120, 6, 6, 0.4, &mut rng);
        let mut m = SoftmaxClassifier::new(6, 6, &mut rng);
        let batch = ds.full_batch();
        let mut opt = Sgd::new(0.5, 0.0, 0.0, m.num_params());
        for _ in 0..60 {
            let (_, g) = m.loss_and_grad(&batch);
            let mut p = m.params().clone();
            opt.step(&mut p, &g, 1.0);
            m.set_params(&p);
        }
        let top1 = m.top_k_accuracy(&batch, 1);
        let top5 = m.top_k_accuracy(&batch, 5);
        // Top-1 coincides with accuracy(); top-5 dominates top-1 and, with
        // 6 classes, is near-perfect after training.
        assert!((top1 - m.accuracy(&batch)).abs() < 1e-6);
        assert!(top5 >= top1);
        assert!(top5 > 0.95, "top5 {top5}");
        // k beyond the class count is trivially 1.
        assert_eq!(m.top_k_accuracy(&batch, 6), 1.0);
    }

    #[test]
    fn top_k_is_zero_for_regression() {
        let mut rng = SimRng::seed(21);
        let ds = Dataset::regression(16, 3, 0.1, &mut rng);
        let m = LinearRegression::new(3);
        assert_eq!(m.top_k_accuracy(&ds.full_batch(), 3), 0.0);
        assert!(m.class_scores(&ds.full_batch(), 0).is_none());
    }

    #[test]
    fn rnn_class_scores_exist() {
        let mut rng = SimRng::seed(22);
        let lens = [3usize, 5];
        let ds = Dataset::sequences(&lens, 2, 3, 0.2, &mut rng);
        let m = ElmanRnn::new(2, 4, 3, &mut rng);
        let batch = ds.full_batch();
        assert_eq!(m.class_scores(&batch, 0).unwrap().len(), 3);
        let t = m.top_k_accuracy(&batch, 2);
        assert!((0.0..=1.0).contains(&t));
    }

    #[test]
    fn empty_batch_loss_is_finite() {
        let mut rng = SimRng::seed(11);
        let ds = Dataset::blobs(4, 3, 2, 0.3, &mut rng);
        let m = SoftmaxClassifier::new(3, 2, &mut rng);
        let batch = ds.batch(vec![]);
        let (loss, grad) = m.loss_and_grad(&batch);
        assert_eq!(loss, 0.0);
        assert!(grad.as_slice().iter().all(|&g| g == 0.0));
        assert_eq!(m.accuracy(&batch), 0.0);
    }
}
