//! Synthetic datasets and mini-batch sampling.
//!
//! Three corpus generators cover the paper's three application domains:
//!
//! * [`Dataset::blobs`] — Gaussian class clusters (stands in for image
//!   classification: ResNet50/VGG16 experiments).
//! * [`Dataset::regression`] — a noisy linear target (used by convergence
//!   sanity tests).
//! * [`Dataset::sequences`] — variable-length sequences whose label depends
//!   on the whole sequence (stands in for LSTM video classification and
//!   Transformer translation; lengths come from the caller, typically a
//!   [`rna_workload`](https://docs.rs) length model).

use rna_simnet::SimRng;
use serde::{Deserialize, Serialize};

/// A supervised learning corpus.
///
/// Inputs are stored flattened; for sequence data each sample is
/// `seq_len × input_dim` values with its length recorded in `seq_lens`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    inputs: Vec<Vec<f32>>,
    labels: Vec<usize>,
    targets: Vec<f32>,
    seq_lens: Option<Vec<usize>>,
    input_dim: usize,
    num_classes: usize,
}

impl Dataset {
    /// Gaussian blobs: `n` points in `dim` dimensions, one cluster per
    /// class, centers on a scaled simplex, isotropic noise `spread`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `dim == 0`, or `classes == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rna_simnet::SimRng;
    /// use rna_training::Dataset;
    ///
    /// let ds = Dataset::blobs(100, 8, 4, 0.5, &mut SimRng::seed(1));
    /// assert_eq!(ds.len(), 100);
    /// assert_eq!(ds.num_classes(), 4);
    /// ```
    pub fn blobs(n: usize, dim: usize, classes: usize, spread: f32, rng: &mut SimRng) -> Self {
        assert!(n > 0 && dim > 0 && classes > 0, "empty dataset spec");
        // Random unit-ish centers, fixed by the rng seed.
        let centers: Vec<Vec<f32>> = (0..classes)
            .map(|_| (0..dim).map(|_| rng.normal(0.0, 1.0) as f32).collect())
            .collect();
        let mut inputs = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % classes;
            let x: Vec<f32> = centers[c]
                .iter()
                .map(|&m| m + spread * rng.normal(0.0, 1.0) as f32)
                .collect();
            inputs.push(x);
            labels.push(c);
        }
        let targets = vec![0.0; n];
        Dataset {
            inputs,
            labels,
            targets,
            seq_lens: None,
            input_dim: dim,
            num_classes: classes,
        }
    }

    /// Noisy linear regression: `y = w·x + ε`, `ε ~ N(0, noise²)` with a
    /// hidden ground-truth `w` drawn from the rng.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `dim == 0`.
    pub fn regression(n: usize, dim: usize, noise: f32, rng: &mut SimRng) -> Self {
        assert!(n > 0 && dim > 0, "empty dataset spec");
        let w: Vec<f32> = (0..dim).map(|_| rng.normal(0.0, 1.0) as f32).collect();
        let mut inputs = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            let x: Vec<f32> = (0..dim).map(|_| rng.normal(0.0, 1.0) as f32).collect();
            let y: f32 = x.iter().zip(&w).map(|(a, b)| a * b).sum::<f32>()
                + noise * rng.normal(0.0, 1.0) as f32;
            inputs.push(x);
            targets.push(y);
        }
        let labels = vec![0; n];
        Dataset {
            inputs,
            labels,
            targets,
            seq_lens: None,
            input_dim: dim,
            num_classes: 1,
        }
    }

    /// Variable-length sequence classification. Each sample is a sequence of
    /// `input_dim`-vectors; its class `c` injects a class prototype into
    /// every step plus noise, so the label is recoverable only by
    /// aggregating the whole sequence — a real recurrent task.
    ///
    /// `lengths` provides the per-sample sequence length (e.g. drawn from
    /// the UCF101 video model, scaled down).
    ///
    /// # Panics
    ///
    /// Panics if `lengths` is empty, contains a zero, or
    /// `input_dim == 0` / `classes == 0`.
    pub fn sequences(
        lengths: &[usize],
        input_dim: usize,
        classes: usize,
        noise: f32,
        rng: &mut SimRng,
    ) -> Self {
        assert!(!lengths.is_empty(), "empty dataset spec");
        assert!(input_dim > 0 && classes > 0, "empty dataset spec");
        assert!(lengths.iter().all(|&l| l > 0), "zero-length sequence");
        let prototypes: Vec<Vec<f32>> = (0..classes)
            .map(|_| {
                (0..input_dim)
                    .map(|_| rng.normal(0.0, 1.0) as f32)
                    .collect()
            })
            .collect();
        let mut inputs = Vec::with_capacity(lengths.len());
        let mut labels = Vec::with_capacity(lengths.len());
        for (i, &len) in lengths.iter().enumerate() {
            let c = i % classes;
            let mut seq = Vec::with_capacity(len * input_dim);
            for _ in 0..len {
                for &p in &prototypes[c] {
                    seq.push(p + noise * rng.normal(0.0, 1.0) as f32);
                }
            }
            inputs.push(seq);
            labels.push(c);
        }
        let n = lengths.len();
        Dataset {
            inputs,
            labels,
            targets: vec![0.0; n],
            seq_lens: Some(lengths.to_vec()),
            input_dim,
            num_classes: classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Feature dimension (per time-step for sequence data).
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of classes (1 for regression).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The flattened input of sample `i`.
    pub fn input(&self, i: usize) -> &[f32] {
        &self.inputs[i]
    }

    /// The class label of sample `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// The regression target of sample `i`.
    pub fn target(&self, i: usize) -> f32 {
        self.targets[i]
    }

    /// The sequence length of sample `i` (1 for non-sequence data).
    pub fn seq_len(&self, i: usize) -> usize {
        self.seq_lens.as_ref().map_or(1, |l| l[i])
    }

    /// Whether this is sequence data.
    pub fn is_sequential(&self) -> bool {
        self.seq_lens.is_some()
    }

    /// Splits into `(train, validation)` with `val_fraction` of the samples
    /// held out (deterministic interleaved split, preserving class balance).
    ///
    /// # Panics
    ///
    /// Panics if `val_fraction` is not in `(0, 1)`.
    pub fn split(&self, val_fraction: f64) -> (Dataset, Dataset) {
        assert!(
            val_fraction > 0.0 && val_fraction < 1.0,
            "validation fraction must be in (0, 1)"
        );
        let stride = (1.0 / val_fraction).round().max(2.0) as usize;
        let mut train = self.empty_like();
        let mut val = self.empty_like();
        for i in 0..self.len() {
            let dst = if i % stride == stride - 1 {
                &mut val
            } else {
                &mut train
            };
            dst.inputs.push(self.inputs[i].clone());
            dst.labels.push(self.labels[i]);
            dst.targets.push(self.targets[i]);
            if let (Some(src), Some(d)) = (&self.seq_lens, &mut dst.seq_lens) {
                d.push(src[i]);
            }
        }
        (train, val)
    }

    fn empty_like(&self) -> Dataset {
        Dataset {
            inputs: vec![],
            labels: vec![],
            targets: vec![],
            seq_lens: self.seq_lens.as_ref().map(|_| vec![]),
            input_dim: self.input_dim,
            num_classes: self.num_classes,
        }
    }

    /// A batch referencing every sample (for full-dataset evaluation).
    pub fn full_batch(&self) -> Batch<'_> {
        Batch {
            data: self,
            indices: (0..self.len()).collect(),
        }
    }

    /// A batch of the given sample indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn batch(&self, indices: Vec<usize>) -> Batch<'_> {
        assert!(
            indices.iter().all(|&i| i < self.len()),
            "batch index out of bounds"
        );
        Batch {
            data: self,
            indices,
        }
    }
}

/// A mini-batch: a dataset reference plus sample indices.
#[derive(Debug, Clone)]
pub struct Batch<'a> {
    data: &'a Dataset,
    indices: Vec<usize>,
}

impl<'a> Batch<'a> {
    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.data
    }

    /// The sample indices.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Total sequence length across the batch — the `units` fed to
    /// per-length compute-time models.
    pub fn total_units(&self) -> u64 {
        self.indices
            .iter()
            .map(|&i| self.data.seq_len(i) as u64)
            .sum()
    }

    /// Longest sequence in the batch (padding cost driver).
    pub fn max_units(&self) -> u64 {
        self.indices
            .iter()
            .map(|&i| self.data.seq_len(i) as u64)
            .max()
            .unwrap_or(0)
    }
}

/// Draws seeded mini-batches with replacement (the i.i.d. sampling SGD
/// analysis assumes).
///
/// # Examples
///
/// ```
/// use rna_simnet::SimRng;
/// use rna_training::{BatchSampler, Dataset};
///
/// let ds = Dataset::blobs(64, 4, 2, 0.3, &mut SimRng::seed(0));
/// let mut sampler = BatchSampler::new(SimRng::seed(1), 8);
/// let batch = sampler.sample(&ds);
/// assert_eq!(batch.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct BatchSampler {
    rng: SimRng,
    batch_size: usize,
}

impl BatchSampler {
    /// Creates a sampler producing batches of `batch_size`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(rng: SimRng, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchSampler { rng, batch_size }
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The exact position of the sampling stream (for checkpoints).
    pub fn rng_state(&self) -> rna_simnet::SimRngState {
        self.rng.state()
    }

    /// Rewinds the sampling stream to a checkpointed position, so the next
    /// [`BatchSampler::sample`] draws the same indices the original sampler
    /// would have drawn.
    pub fn restore_rng(&mut self, state: &rna_simnet::SimRngState) {
        self.rng = SimRng::from_state(state);
    }

    /// Samples one mini-batch (with replacement).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn sample<'a>(&mut self, data: &'a Dataset) -> Batch<'a> {
        assert!(!data.is_empty(), "cannot sample from an empty dataset");
        let indices = (0..self.batch_size)
            .map(|_| self.rng.choose_one(data.len()))
            .collect();
        data.batch(indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_shape_and_labels() {
        let ds = Dataset::blobs(30, 5, 3, 0.1, &mut SimRng::seed(0));
        assert_eq!(ds.len(), 30);
        assert_eq!(ds.input_dim(), 5);
        assert_eq!(ds.num_classes(), 3);
        assert!(!ds.is_sequential());
        for i in 0..30 {
            assert_eq!(ds.label(i), i % 3);
            assert_eq!(ds.input(i).len(), 5);
            assert_eq!(ds.seq_len(i), 1);
        }
    }

    #[test]
    fn blobs_are_deterministic_per_seed() {
        let a = Dataset::blobs(10, 3, 2, 0.5, &mut SimRng::seed(7));
        let b = Dataset::blobs(10, 3, 2, 0.5, &mut SimRng::seed(7));
        assert_eq!(a, b);
    }

    #[test]
    fn regression_targets_follow_linear_model() {
        let ds = Dataset::regression(500, 4, 0.0, &mut SimRng::seed(1));
        // With zero noise, y is an exact linear function: solving on two
        // disjoint halves must give consistent predictions. Cheap check:
        // the target of a scaled input x and of x itself correlate.
        assert_eq!(ds.num_classes(), 1);
        assert!(ds.target(0).is_finite());
    }

    #[test]
    fn sequences_record_lengths() {
        let lens = [3usize, 7, 5];
        let ds = Dataset::sequences(&lens, 2, 2, 0.1, &mut SimRng::seed(2));
        assert!(ds.is_sequential());
        for (i, &l) in lens.iter().enumerate() {
            assert_eq!(ds.seq_len(i), l);
            assert_eq!(ds.input(i).len(), l * 2);
        }
    }

    #[test]
    fn split_partitions_all_samples() {
        let ds = Dataset::blobs(100, 3, 2, 0.5, &mut SimRng::seed(3));
        let (train, val) = ds.split(0.2);
        assert_eq!(train.len() + val.len(), 100);
        assert_eq!(val.len(), 20);
        assert_eq!(train.num_classes(), 2);
    }

    #[test]
    fn split_preserves_sequence_lengths() {
        let lens: Vec<usize> = (1..=20).collect();
        let ds = Dataset::sequences(&lens, 2, 2, 0.1, &mut SimRng::seed(4));
        let (train, val) = ds.split(0.25);
        assert!(train.is_sequential() && val.is_sequential());
        assert_eq!(train.len() + val.len(), 20);
        // Every recorded length is positive and consistent with the input.
        for i in 0..val.len() {
            assert_eq!(val.input(i).len(), val.seq_len(i) * 2);
        }
    }

    #[test]
    #[should_panic(expected = "validation fraction")]
    fn split_rejects_bad_fraction() {
        let ds = Dataset::blobs(10, 2, 2, 0.5, &mut SimRng::seed(0));
        ds.split(1.0);
    }

    #[test]
    fn batch_units() {
        let lens = [3usize, 7];
        let ds = Dataset::sequences(&lens, 2, 2, 0.1, &mut SimRng::seed(5));
        let b = ds.full_batch();
        assert_eq!(b.total_units(), 10);
        assert_eq!(b.max_units(), 7);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn sampler_is_deterministic() {
        let ds = Dataset::blobs(50, 2, 2, 0.5, &mut SimRng::seed(0));
        let mut s1 = BatchSampler::new(SimRng::seed(9), 4);
        let mut s2 = BatchSampler::new(SimRng::seed(9), 4);
        assert_eq!(s1.sample(&ds).indices(), s2.sample(&ds).indices());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn batch_rejects_bad_indices() {
        let ds = Dataset::blobs(5, 2, 2, 0.5, &mut SimRng::seed(0));
        ds.batch(vec![5]);
    }
}
