//! # rna-training
//!
//! The machine-learning substrate: real stochastic gradient descent on
//! synthetic learnable tasks.
//!
//! The paper trains TensorFlow models (ResNet50, VGG16, LSTM, Transformer).
//! Reproducing the *protocol* results does not require those exact networks —
//! it requires (a) gradients whose statistics behave like SGD gradients
//! (unbiased, bounded variance, Assumption 1 of §5) and (b) a loss that
//! genuinely degrades when synchronization goes stale. This crate provides
//! both with honest numerics:
//!
//! * [`dataset`] — synthetic classification/regression/sequence corpora with
//!   controllable difficulty, plus deterministic train/validation splits and
//!   seeded mini-batch sampling.
//! * [`model`] — differentiable models implementing [`model::Model`]:
//!   a convex softmax classifier, a one-hidden-layer MLP, linear regression,
//!   and a real Elman RNN trained with back-propagation through time
//!   (the variable-length stand-in for the paper's LSTM).
//! * [`optimizer`] — SGD with momentum, weight decay, learning-rate
//!   schedules, and the dynamic batch-count scaling RNA applies
//!   (Linear Scaling Rule, §3.3).
//! * [`metrics`] — loss/accuracy history and Keras-style early stopping
//!   (the paper stops training when the loss stops improving for ten
//!   checks, §8.1).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod optimizer;

pub use dataset::{Batch, BatchSampler, Dataset};
pub use metrics::{EarlyStopping, History, HistoryPoint};
pub use model::Model;
pub use optimizer::{LrSchedule, Sgd};
