//! Convergence tracking and stopping criteria.
//!
//! [`History`] records `(virtual time, iteration, loss, accuracy)` points —
//! the raw material of the paper's Figure 7 convergence curves — and
//! [`EarlyStopping`] reimplements the Keras callback the paper uses to
//! terminate training (patience 10, §8.1).

use serde::{Deserialize, Serialize};

/// One convergence measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistoryPoint {
    /// Virtual seconds since training started.
    pub time_s: f64,
    /// Global synchronization round at which the point was taken.
    pub iteration: u64,
    /// Evaluation loss.
    pub loss: f64,
    /// Evaluation accuracy in `[0, 1]` (0 for regression).
    pub accuracy: f64,
}

/// An append-only convergence log.
///
/// # Examples
///
/// ```
/// use rna_training::History;
///
/// let mut h = History::new();
/// h.record(0.0, 0, 2.3, 0.1);
/// h.record(1.0, 10, 1.1, 0.6);
/// assert_eq!(h.best_loss(), Some(1.1));
/// assert_eq!(h.final_accuracy(), Some(0.6));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct History {
    points: Vec<HistoryPoint>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Appends a measurement.
    pub fn record(&mut self, time_s: f64, iteration: u64, loss: f64, accuracy: f64) {
        self.points.push(HistoryPoint {
            time_s,
            iteration,
            loss,
            accuracy,
        });
    }

    /// All recorded points in order.
    pub fn points(&self) -> &[HistoryPoint] {
        &self.points
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The minimum loss seen.
    pub fn best_loss(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.loss)
            .min_by(|a, b| a.partial_cmp(b).expect("NaN loss"))
    }

    /// The last recorded loss.
    pub fn final_loss(&self) -> Option<f64> {
        self.points.last().map(|p| p.loss)
    }

    /// The last recorded accuracy.
    pub fn final_accuracy(&self) -> Option<f64> {
        self.points.last().map(|p| p.accuracy)
    }

    /// The maximum accuracy seen.
    pub fn best_accuracy(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.accuracy)
            .max_by(|a, b| a.partial_cmp(b).expect("NaN accuracy"))
    }

    /// The first virtual time at which loss dropped to `target` or below —
    /// the paper's time-to-target-loss performance metric (§7.3).
    pub fn time_to_loss(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.loss <= target)
            .map(|p| p.time_s)
    }

    /// The first virtual time at which accuracy reached `target` or above.
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.accuracy >= target)
            .map(|p| p.time_s)
    }

    /// The best loss achieved up to `frac` of the run's wall time — the
    /// milestone used as the cross-approach "target loss" in the
    /// evaluation. Picking an *interior* point (the paper's target losses
    /// are likewise reached well before saturation) keeps the
    /// time-to-target comparison meaningful: a baseline that keeps
    /// improving until its budget expires would otherwise only reach its
    /// own best loss at the very end, inflating every speedup against it.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is not in `(0, 1]`.
    pub fn loss_milestone(&self, frac: f64) -> Option<f64> {
        assert!(frac > 0.0 && frac <= 1.0, "fraction must be in (0, 1]");
        let end = self.points.last()?.time_s;
        let cutoff = end * frac;
        self.points
            .iter()
            .filter(|p| p.time_s <= cutoff)
            .map(|p| p.loss)
            .min_by(|a, b| a.partial_cmp(b).expect("NaN loss"))
    }
}

/// Keras-style early stopping on loss: stop when the monitored loss has not
/// improved by at least `min_delta` for `patience` consecutive checks.
///
/// # Examples
///
/// ```
/// use rna_training::EarlyStopping;
///
/// let mut stop = EarlyStopping::new(2, 0.0);
/// assert!(!stop.update(1.0));
/// assert!(!stop.update(0.9)); // improved
/// assert!(!stop.update(0.95)); // strike 1
/// assert!(stop.update(0.91)); // strike 2 → stop
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EarlyStopping {
    patience: u32,
    min_delta: f64,
    best: f64,
    strikes: u32,
}

impl EarlyStopping {
    /// Creates a stopper. The paper uses `patience = 10` with the default
    /// delta.
    ///
    /// # Panics
    ///
    /// Panics if `min_delta` is negative or NaN.
    pub fn new(patience: u32, min_delta: f64) -> Self {
        assert!(min_delta >= 0.0, "min_delta must be non-negative");
        EarlyStopping {
            patience,
            min_delta,
            best: f64::INFINITY,
            strikes: 0,
        }
    }

    /// The paper's configuration: patience 10.
    pub fn paper_default() -> Self {
        EarlyStopping::new(10, 0.0)
    }

    /// Feeds one loss observation; returns `true` when training should stop.
    pub fn update(&mut self, loss: f64) -> bool {
        if loss < self.best - self.min_delta {
            self.best = loss;
            self.strikes = 0;
            false
        } else {
            self.strikes += 1;
            self.strikes >= self.patience
        }
    }

    /// Best loss observed so far.
    pub fn best(&self) -> f64 {
        self.best
    }

    /// Consecutive non-improving checks so far.
    pub fn strikes(&self) -> u32 {
        self.strikes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_tracks_extremes() {
        let mut h = History::new();
        assert!(h.is_empty());
        assert_eq!(h.best_loss(), None);
        h.record(0.0, 0, 3.0, 0.2);
        h.record(1.0, 5, 1.0, 0.7);
        h.record(2.0, 10, 1.5, 0.6);
        assert_eq!(h.len(), 3);
        assert_eq!(h.best_loss(), Some(1.0));
        assert_eq!(h.final_loss(), Some(1.5));
        assert_eq!(h.best_accuracy(), Some(0.7));
        assert_eq!(h.final_accuracy(), Some(0.6));
    }

    #[test]
    fn time_to_loss_finds_first_crossing() {
        let mut h = History::new();
        h.record(0.0, 0, 3.0, 0.0);
        h.record(5.0, 5, 1.9, 0.0);
        h.record(9.0, 9, 1.2, 0.0);
        assert_eq!(h.time_to_loss(2.0), Some(5.0));
        assert_eq!(h.time_to_loss(1.0), None);
    }

    #[test]
    fn time_to_accuracy_finds_first_crossing() {
        let mut h = History::new();
        h.record(0.0, 0, 1.0, 0.3);
        h.record(4.0, 4, 0.5, 0.8);
        assert_eq!(h.time_to_accuracy(0.75), Some(4.0));
        assert_eq!(h.time_to_accuracy(0.99), None);
    }

    #[test]
    fn loss_milestone_is_interior() {
        let mut h = History::new();
        h.record(0.0, 0, 3.0, 0.0);
        h.record(5.0, 5, 2.0, 0.0);
        h.record(10.0, 10, 1.0, 0.0);
        // At 70% of wall time (7.0s) the best loss so far is 2.0.
        assert_eq!(h.loss_milestone(0.7), Some(2.0));
        assert_eq!(h.loss_milestone(1.0), Some(1.0));
        assert_eq!(History::new().loss_milestone(0.5), None);
    }

    #[test]
    fn loss_milestone_ignores_later_regressions() {
        let mut h = History::new();
        h.record(0.0, 0, 3.0, 0.0);
        h.record(2.0, 2, 1.0, 0.0);
        h.record(4.0, 4, 2.5, 0.0);
        assert_eq!(h.loss_milestone(1.0), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn loss_milestone_rejects_bad_fraction() {
        let _ = History::new().loss_milestone(0.0);
    }

    #[test]
    fn early_stopping_resets_on_improvement() {
        let mut s = EarlyStopping::new(3, 0.0);
        assert!(!s.update(2.0));
        assert!(!s.update(2.1)); // strike 1
        assert!(!s.update(2.2)); // strike 2
        assert!(!s.update(1.9)); // improvement resets
        assert_eq!(s.strikes(), 0);
        assert_eq!(s.best(), 1.9);
        assert!(!s.update(2.0));
        assert!(!s.update(2.0));
        assert!(s.update(2.0)); // 3 strikes
    }

    #[test]
    fn min_delta_requires_meaningful_improvement() {
        let mut s = EarlyStopping::new(1, 0.5);
        assert!(!s.update(2.0));
        // 1.8 improves by 0.2 < 0.5 → counts as a strike and stops.
        assert!(s.update(1.8));
    }

    #[test]
    fn paper_default_has_patience_ten() {
        let mut s = EarlyStopping::paper_default();
        s.update(1.0);
        for _ in 0..9 {
            assert!(!s.update(1.0));
        }
        assert!(s.update(1.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_delta() {
        EarlyStopping::new(1, -0.1);
    }
}
