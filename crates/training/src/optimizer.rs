//! SGD with momentum, weight decay, and learning-rate schedules.
//!
//! The schedule machinery includes the two paper-specific behaviours:
//! step decay at fixed epochs (ResNet50: ×0.1 at epochs 30/60/80, §7.2.1)
//! and the *dynamic* per-round scaling RNA applies — the Linear Scaling
//! Rule of §3.3, `γ_k = Σw_{k,i} · γ`, folded in via the `lr_scale`
//! argument of [`Sgd::step`].

use rna_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A learning-rate schedule evaluated per iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// A constant rate.
    Constant(f32),
    /// `initial × factor^(number of passed milestones)` — the ResNet50
    /// recipe uses milestones at epochs 30/60/80 with factor 0.1.
    StepDecay {
        /// Starting learning rate.
        initial: f32,
        /// Multiplicative decay applied at each milestone.
        factor: f32,
        /// Iteration numbers at which decay fires (sorted ascending).
        milestones: Vec<u64>,
    },
}

impl LrSchedule {
    /// The learning rate at iteration `iter`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rna_training::LrSchedule;
    ///
    /// let s = LrSchedule::StepDecay {
    ///     initial: 0.1,
    ///     factor: 0.1,
    ///     milestones: vec![100, 200],
    /// };
    /// assert_eq!(s.lr_at(50), 0.1);
    /// assert!((s.lr_at(150) - 0.01).abs() < 1e-9);
    /// assert!((s.lr_at(250) - 0.001).abs() < 1e-9);
    /// ```
    pub fn lr_at(&self, iter: u64) -> f32 {
        match self {
            LrSchedule::Constant(lr) => *lr,
            LrSchedule::StepDecay {
                initial,
                factor,
                milestones,
            } => {
                let passed = milestones.iter().filter(|&&m| iter >= m).count() as i32;
                initial * factor.powi(passed)
            }
        }
    }
}

/// SGD with momentum and decoupled weight decay:
///
/// ```text
/// v ← μ v + g + λ x
/// x ← x − (lr_scale · γ) v
/// ```
///
/// One optimizer instance per worker; the momentum buffer lives here.
///
/// # Examples
///
/// ```
/// use rna_tensor::Tensor;
/// use rna_training::Sgd;
///
/// let mut opt = Sgd::new(0.1, 0.0, 0.0, 2);
/// let mut x = Tensor::from_vec(vec![1.0, 1.0]);
/// let g = Tensor::from_vec(vec![1.0, -1.0]);
/// opt.step(&mut x, &g, 1.0);
/// assert_eq!(x.as_slice(), &[0.9, 1.1]);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Tensor,
}

impl Sgd {
    /// Creates an optimizer for `num_params` parameters.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`, `momentum` is outside `[0, 1)`, or
    /// `weight_decay < 0`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32, num_params: usize) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Tensor::zeros(num_params),
        }
    }

    /// The base learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the base learning rate (schedules call this per iteration).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update in place. `lr_scale` is RNA's dynamic Linear
    /// Scaling factor (`Σ w_{k,i}` — the number of live contributors this
    /// round); pass `1.0` for plain SGD.
    ///
    /// # Panics
    ///
    /// Panics if tensor lengths are inconsistent or `lr_scale` is negative.
    pub fn step(&mut self, params: &mut Tensor, grad: &Tensor, lr_scale: f32) {
        assert!(lr_scale >= 0.0, "lr scale must be non-negative");
        assert_eq!(params.len(), grad.len(), "params/grad length mismatch");
        assert_eq!(params.len(), self.velocity.len(), "optimizer size mismatch");
        let v = self.velocity.as_mut_slice();
        let p = params.as_mut_slice();
        let g = grad.as_slice();
        let eta = self.lr * lr_scale;
        for i in 0..p.len() {
            v[i] = self.momentum * v[i] + g[i] + self.weight_decay * p[i];
            p[i] -= eta * v[i];
        }
    }

    /// Clears the momentum buffer (after a hard parameter overwrite, e.g. a
    /// hierarchical broadcast).
    pub fn reset_momentum(&mut self) {
        self.velocity.fill_zero();
    }

    /// The momentum buffer (for checkpoints — the optimizer state that must
    /// survive a crash alongside the parameters).
    pub fn velocity(&self) -> &Tensor {
        &self.velocity
    }

    /// Overwrites the momentum buffer from a checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the optimizer's parameter count.
    pub fn set_velocity(&mut self, velocity: &Tensor) {
        assert_eq!(
            velocity.len(),
            self.velocity.len(),
            "optimizer size mismatch"
        );
        self.velocity.copy_from(velocity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_step_is_gradient_descent() {
        let mut opt = Sgd::new(0.5, 0.0, 0.0, 1);
        let mut x = Tensor::from_vec(vec![2.0]);
        opt.step(&mut x, &Tensor::from_vec(vec![1.0]), 1.0);
        assert_eq!(x.as_slice(), &[1.5]);
    }

    #[test]
    fn lr_scale_multiplies_step() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0, 1);
        let mut x = Tensor::from_vec(vec![1.0]);
        opt.step(&mut x, &Tensor::from_vec(vec![1.0]), 4.0);
        assert!((x[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn zero_scale_freezes_params_but_updates_velocity() {
        let mut opt = Sgd::new(0.1, 0.9, 0.0, 1);
        let mut x = Tensor::from_vec(vec![1.0]);
        opt.step(&mut x, &Tensor::from_vec(vec![1.0]), 0.0);
        assert_eq!(x[0], 1.0);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::new(0.1, 0.5, 0.0, 1);
        let mut x = Tensor::from_vec(vec![0.0]);
        let g = Tensor::from_vec(vec![1.0]);
        opt.step(&mut x, &g, 1.0); // v=1,   x=-0.1
        opt.step(&mut x, &g, 1.0); // v=1.5, x=-0.25
        assert!((x[0] + 0.25).abs() < 1e-6);
        opt.reset_momentum();
        opt.step(&mut x, &g, 1.0); // v=1 again
        assert!((x[0] + 0.35).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut opt = Sgd::new(0.1, 0.0, 0.1, 1);
        let mut x = Tensor::from_vec(vec![1.0]);
        opt.step(&mut x, &Tensor::from_vec(vec![0.0]), 1.0);
        assert!((x[0] - 0.99).abs() < 1e-6);
    }

    #[test]
    fn minimizes_quadratic() {
        // f(x) = x², gradient 2x — momentum SGD should converge to 0.
        let mut opt = Sgd::new(0.1, 0.9, 0.0, 1);
        let mut x = Tensor::from_vec(vec![5.0]);
        for _ in 0..200 {
            let g = Tensor::from_vec(vec![2.0 * x[0]]);
            opt.step(&mut x, &g, 1.0);
        }
        assert!(x[0].abs() < 1e-3, "x = {}", x[0]);
    }

    #[test]
    fn constant_schedule() {
        assert_eq!(LrSchedule::Constant(0.125).lr_at(0), 0.125);
        assert_eq!(LrSchedule::Constant(0.125).lr_at(1_000_000), 0.125);
    }

    #[test]
    fn step_decay_at_milestones() {
        let s = LrSchedule::StepDecay {
            initial: 1.0,
            factor: 0.5,
            milestones: vec![10, 20],
        };
        assert_eq!(s.lr_at(9), 1.0);
        assert_eq!(s.lr_at(10), 0.5);
        assert_eq!(s.lr_at(19), 0.5);
        assert_eq!(s.lr_at(20), 0.25);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_lr() {
        Sgd::new(0.0, 0.0, 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn rejects_bad_momentum() {
        Sgd::new(0.1, 1.0, 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_grad() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0, 2);
        let mut x = Tensor::zeros(2);
        opt.step(&mut x, &Tensor::zeros(3), 1.0);
    }
}
