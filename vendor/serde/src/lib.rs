//! Offline stand-in for `serde`.
//!
//! The container building this workspace cannot reach crates.io, so the
//! real `serde` cannot be fetched. The workspace uses the traits purely as
//! derive annotations (no serializer is wired up anywhere), so this crate
//! provides the two trait names and re-exports no-op derive macros under
//! the usual names. Restoring the registry dependency restores real
//! serialization without touching any downstream source file.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
