//! Offline stand-in for `proptest`.
//!
//! This container cannot reach crates.io, so the real `proptest` cannot be
//! fetched. This crate reimplements the slice of its API the workspace
//! uses — `proptest! { fn f(x in strategy, y: u64) { .. } }`, range and
//! tuple strategies, `collection::vec`, `any::<T>()`, and the
//! `prop_assert*` / `prop_assume!` macros — on top of a small,
//! deterministic SplitMix64 generator. Each property runs [`NUM_CASES`]
//! cases seeded from the test's module path, so failures reproduce
//! bit-for-bit across runs and machines (no shrinking, no persistence
//! files).

/// Cases executed per property.
pub const NUM_CASES: u64 = 64;

/// Deterministic generator driving case inputs (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test identifier (FNV-1a over the name).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of values for one property parameter.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as $t;
                self.start.wrapping_add(draw)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                let draw = (u128::from(rng.next_u64()) % span) as $t;
                self.start().wrapping_add(draw)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let f = rng.next_f64() as $t;
                let x = self.start + f * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if x >= self.end { self.start } else { x }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Types with a whole-domain default strategy (`any::<T>()` and bare
/// `name: type` parameters).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        (rng.next_f64() * 2.0 - 1.0) as f32 * 1e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_f64() * 2.0 - 1.0) * 1e12
    }
}

/// The strategy behind [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing a `Vec` with length drawn from `len` and
    /// elements drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.len.start < self.len.end {
                self.len.start + (rng.next_u64() as usize) % (self.len.end - self.len.start)
            } else {
                self.len.start
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Everything a property test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Binds property parameters inside the generated test body. `name in
/// strategy` samples the strategy; `name: type` samples the type's
/// [`Arbitrary`] implementation.
#[macro_export]
macro_rules! __pt_bind {
    ($rng:ident) => {};
    ($rng:ident $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__pt_bind!($rng $($rest)*);
    };
    ($rng:ident $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__pt_bind!($rng $($rest)*);
    };
}

/// Declares property tests. Each `fn` becomes a `#[test]` running
/// [`NUM_CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __pt_rng = $crate::TestRng::for_test(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __pt_case in 0..$crate::NUM_CASES {
                    let _ = __pt_case;
                    $crate::__pt_bind!(__pt_rng $($params)*);
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a name the real proptest uses.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// `assert_eq!` under a name the real proptest uses.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// `assert_ne!` under a name the real proptest uses.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Skips the current case when its inputs violate a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..9, f in -1.5f64..2.5, n in 0usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
            prop_assert!(n < 4);
        }

        #[test]
        fn typed_and_assume(seed: u64, k in 1usize..10) {
            prop_assume!(k > 2);
            let _ = seed;
            prop_assert!(k > 2 && k < 10);
        }

        #[test]
        fn vec_and_tuples(
            v in collection::vec((any::<bool>(), -1.0f32..1.0), 1..5),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for (_, f) in v {
                prop_assert!((-1.0..1.0).contains(&f));
            }
        }
    }
}
