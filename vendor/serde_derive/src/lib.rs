//! Offline stand-in for `serde_derive`.
//!
//! This container has no network access to crates.io, so the real
//! `serde_derive` cannot be fetched. The workspace only uses
//! `#[derive(Serialize, Deserialize)]` as forward-looking annotations — no
//! code path serializes anything yet — so these derives expand to nothing.
//! Swap the `[workspace.dependencies]` entries back to the registry
//! versions to restore real serialization support.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
