//! Offline stand-in for `criterion`.
//!
//! This container cannot reach crates.io, so the real `criterion` cannot
//! be fetched. This crate keeps the workspace's bench suites compiling and
//! running with the same source: `Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple warm-up plus
//! `sample_size` timed batches with a mean/min report — good enough for
//! relative comparisons, with none of the real crate's statistics.

use std::time::{Duration, Instant};

/// Runs one benchmark routine.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    warm_up: Duration,
    elapsed: Vec<Duration>,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring `sample_size`
    /// batches (bounded by the measurement-time budget).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also sizes the batch so one sample is >= ~1ms.
        let warm_start = Instant::now();
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let dt = t.elapsed();
            if dt >= Duration::from_millis(1) || warm_start.elapsed() >= self.warm_up {
                break;
            }
            batch = batch.saturating_mul(2);
        }
        let measure_start = Instant::now();
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.elapsed.push(t.elapsed());
            self.iters += batch;
            if measure_start.elapsed() >= self.budget {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<50} (no samples)");
            return;
        }
        let total: Duration = self.elapsed.iter().sum();
        let mean_ns = total.as_nanos() as f64 / self.iters as f64;
        let batch = self.iters / self.elapsed.len() as u64;
        let min_ns = self
            .elapsed
            .iter()
            .map(|d| d.as_nanos() as f64 / batch.max(1) as f64)
            .fold(f64::INFINITY, f64::min);
        println!("{name:<50} mean {mean_ns:>12.1} ns/iter   min {min_ns:>12.1} ns/iter");
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the time spent measuring one benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Caps the warm-up time of one benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            budget: self.measurement_time,
            warm_up: self.warm_up_time,
            elapsed: Vec::new(),
            iters: 0,
        };
        f(&mut b);
        b.report(&name);
        self
    }

    /// Opens a named group; group benchmarks report as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named cluster of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function, in either the struct-ish or the
/// positional form the real crate accepts.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
